//! Chunked transaction-id sets with per-chunk array/bitmap/run containers.
//!
//! Every support computation in COLARM is a tidset operation: the global
//! support of an itemset is the length of the intersection of its items'
//! tid-lists, and the *local* support w.r.t. a focal subset `DQ` is
//! `|tids(I) ∩ tids(DQ)|` (paper §2.2). PR 1's two-kind sparse/dense
//! hybrid picked one representation per *whole set*, which mispredicts
//! exactly the sets drill-down produces: globally sparse but locally
//! clustered. This kernel instead partitions the u32 tid universe into
//! 64k-aligned chunks (key = `tid >> 16`) and stores each non-empty chunk
//! independently as whichever of three containers is byte-smallest for
//! its local density (see [`ContainerKind`]):
//!
//! * **array** — sorted `u16` low bits; merge/gallop kernels;
//! * **bitmap** — packed `u64` words (≤ 1024, trailing zeros trimmed);
//!   word-wise `AND`/`OR`/`ANDNOT` + `count_ones()` kernels;
//! * **runs** — sorted inclusive intervals; interval-algebra kernels.
//!
//! [`intersect`](Tidset::intersect), [`intersect_count`](Tidset::intersect_count),
//! [`union`](Tidset::union) and [`minus`](Tidset::minus) dispatch a
//! specialized kernel for each of the nine container-pair combinations,
//! chunk by chunk. The per-chunk container choice is a deterministic
//! function of the chunk's contents — never of scheduling or of the
//! operation that produced it — so derived tidsets (drill-down reuse)
//! and parallel executions hold bit-identical physical shapes.
//!
//! The representation stays an internal detail: equality, hashing,
//! iteration order and the serde format (a plain sorted id sequence,
//! unchanged since the all-sparse kernel) are representation-independent,
//! so persisted index snapshots round-trip across kernel versions. The
//! binary codec writes the per-container v2 encoding (tag `2`) and still
//! reads the PR 1 sparse/dense encodings (tags `0`/`1`) as a fallback.

mod container;

pub use container::ContainerKind;

use crate::codec::{self, CodecError, Cursor};
use crate::view::SliceView;
use container::{Container, ContainerIter, Repr, CHUNK_BITS};
use serde::de::{SeqAccess, Visitor};
use serde::ser::SerializeSeq;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Binary-codec tags: the PR 1 sparse (delta-varint) and dense (bitmap)
/// encodings, kept as a read-path fallback for v1 snapshots, and the
/// chunked per-container encoding every new snapshot writes.
const TAG_SPARSE_V1: u8 = 0;
const TAG_DENSE_V1: u8 = 1;
const TAG_CHUNKED: u8 = 2;

/// One 64k-aligned chunk: the high 16 tid bits and the container holding
/// the low 16 bits. Chunks are sorted by key and never empty.
#[derive(Debug, Clone)]
struct Chunk {
    key: u16,
    container: Container,
}

impl Chunk {
    /// Lowest tid representable in this chunk (`key << 16`).
    #[inline]
    fn base(&self) -> u32 {
        (self.key as u32) << CHUNK_BITS
    }
}

/// A coarse summary of a [`Tidset`]'s physical shape: the container kind
/// shared by every chunk, or [`Mixed`](TidsetKind::Mixed) when chunks
/// disagree. The empty set reports [`Array`](TidsetKind::Array).
///
/// Exposed for instrumentation and shape-stability tests only; the
/// per-chunk breakdown is available via [`Tidset::shape`]. Like the
/// per-chunk kinds, this is a deterministic function of the set's
/// contents, never of scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TidsetKind {
    /// Every chunk is a sorted-u16 array (also reported by the empty set).
    Array,
    /// Every chunk is a packed bitmap.
    Bitmap,
    /// Every chunk is a run list.
    Runs,
    /// Chunks use different container kinds.
    Mixed,
}

/// A sorted, deduplicated set of transaction (record) ids.
#[derive(Debug, Clone, Default)]
pub struct Tidset {
    chunks: Vec<Chunk>,
    len: usize,
}

/// One chunk's payload borrowed out of a [`Tidset`] for serialization
/// (see [`Tidset::chunk_refs`]). Mirrors the three container layouts.
#[derive(Debug, Clone, Copy)]
pub enum ChunkRef<'a> {
    /// Strictly sorted low 16 bits.
    Array(&'a [u16]),
    /// Packed bitmap words plus the cached population count.
    Bitmap { words: &'a [u64], card: u32 },
    /// Sorted maximal inclusive `(start, end)` intervals.
    Runs(&'a [(u16, u16)]),
}

/// One chunk's payload handed *into* a [`Tidset`] by the zero-copy
/// snapshot loader (see [`Tidset::from_chunk_views`]). Array and Bitmap
/// payloads borrow mapped file memory through a [`SliceView`]; Runs are
/// always owned.
#[derive(Debug, Clone)]
pub enum ChunkView {
    /// Strictly sorted low 16 bits, borrowed.
    Array(SliceView<u16>),
    /// Packed bitmap words, borrowed, plus the declared population count.
    Bitmap { words: SliceView<u64>, card: u32 },
    /// Sorted maximal inclusive intervals, owned.
    Runs(Vec<(u16, u16)>),
}

impl Tidset {
    /// The empty tidset.
    pub fn new() -> Self {
        Tidset::default()
    }

    /// Tidset of the full universe `0..n` — O(n / 2^16) run containers,
    /// not O(n) ids.
    pub fn full(n: u32) -> Self {
        let mut chunks = Vec::with_capacity(((n as usize) >> CHUNK_BITS) + 1);
        let mut remaining = n as u64;
        let mut key = 0u32;
        while remaining > 0 {
            let take = remaining.min(1 << CHUNK_BITS) as u32;
            // A single-tid tail chunk is canonically an array (2 bytes
            // beat one 4-byte run); anything longer is one run.
            let container = if take == 1 {
                Container::Array(vec![0])
            } else {
                Container::Runs(vec![(0, (take - 1) as u16)])
            };
            chunks.push(Chunk {
                key: key as u16,
                container,
            });
            remaining -= take as u64;
            key += 1;
        }
        Tidset {
            chunks,
            len: n as usize,
        }
    }

    /// Build from a vector that is already sorted and deduplicated.
    ///
    /// Sortedness is checked with a debug assertion only; callers on hot
    /// paths (the vertical index, CHARM) construct tidsets in order.
    pub fn from_sorted(v: Vec<u32>) -> Self {
        debug_assert!(v.windows(2).all(|w| w[0] < w[1]), "tidset must be strictly sorted");
        let len = v.len();
        let mut chunks = Vec::new();
        let mut i = 0usize;
        while i < v.len() {
            let key = (v[i] >> CHUNK_BITS) as u16;
            let j = i + v[i..].partition_point(|&t| (t >> CHUNK_BITS) as u16 == key);
            let lows: Vec<u16> = v[i..j].iter().map(|&t| t as u16).collect();
            chunks.push(Chunk {
                key,
                container: Container::Array(lows).normalized(),
            });
            i = j;
        }
        Tidset { chunks, len }
    }

    /// Build from an arbitrary iterator (sorts and deduplicates).
    pub fn from_unsorted(it: impl IntoIterator<Item = u32>) -> Self {
        let mut v: Vec<u32> = it.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Tidset::from_sorted(v)
    }

    /// Number of tids — i.e. the absolute support count.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no tids are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The physical shape summary (see [`TidsetKind`]).
    pub fn kind(&self) -> TidsetKind {
        let mut kinds = self.chunks.iter().map(|c| c.container.kind());
        match kinds.next() {
            None => TidsetKind::Array,
            Some(first) => {
                if kinds.all(|k| k == first) {
                    match first {
                        ContainerKind::Array => TidsetKind::Array,
                        ContainerKind::Bitmap => TidsetKind::Bitmap,
                        ContainerKind::Runs => TidsetKind::Runs,
                    }
                } else {
                    TidsetKind::Mixed
                }
            }
        }
    }

    /// The exact physical shape: `(chunk key, container kind)` per chunk,
    /// in key order. Deterministic in the set's contents; used by the
    /// drill-down shape-stability tests and EXPLAIN instrumentation.
    pub fn shape(&self) -> Vec<(u16, ContainerKind)> {
        self.chunks
            .iter()
            .map(|c| (c.key, c.container.kind()))
            .collect()
    }

    /// Per-chunk `(container kind, cardinality)` pairs, in key order —
    /// the raw material of the cost model's container histogram.
    pub fn chunk_stats(&self) -> impl Iterator<Item = (ContainerKind, usize)> + '_ {
        self.chunks
            .iter()
            .map(|c| (c.container.kind(), c.container.card()))
    }

    /// Invoke `f` with the container-kind pair of every chunk-level kernel
    /// an intersection of `self` and `other` dispatches (chunks present in
    /// both operands). This is how the metrics layer attributes an
    /// intersection to physical kernels without re-running them.
    pub fn for_each_kernel_pair(
        &self,
        other: &Tidset,
        mut f: impl FnMut(ContainerKind, ContainerKind),
    ) {
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.chunks.len() && j < other.chunks.len() {
            match self.chunks[i].key.cmp(&other.chunks[j].key) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    f(
                        self.chunks[i].container.kind(),
                        other.chunks[j].container.kind(),
                    );
                    i += 1;
                    j += 1;
                }
            }
        }
    }

    /// Largest tid plus one (`0` for the empty set).
    fn span(&self) -> usize {
        match self.chunks.last() {
            None => 0,
            Some(c) => c.base() as usize + c.container.last() as usize + 1,
        }
    }

    /// True when this set is exactly `{0, 1, …, len-1}` — a full range.
    /// O(1) and used to short-circuit operations against universe sets.
    fn is_full_range(&self) -> bool {
        self.len == self.span()
    }

    /// Membership test.
    pub fn contains(&self, tid: u32) -> bool {
        let key = (tid >> CHUNK_BITS) as u16;
        match self.chunks.binary_search_by_key(&key, |c| c.key) {
            Ok(i) => self.chunks[i].container.contains(tid as u16),
            Err(_) => false,
        }
    }

    /// Copy out the tids as a sorted vector.
    pub fn to_vec(&self) -> Vec<u32> {
        let mut v = Vec::with_capacity(self.len);
        v.extend(self.iter());
        v
    }

    /// Iterate tids in ascending order.
    pub fn iter(&self) -> TidIter<'_> {
        TidIter {
            chunks: self.chunks.iter(),
            cur: None,
        }
    }

    /// Append a tid that is strictly greater than every present tid.
    /// The touched chunk is *not* re-normalized (all set operations and
    /// constructors produce canonical shapes; monotonic pushes are the one
    /// deliberately cheap escape hatch, and equality/hash stay logical).
    ///
    /// # Panics
    /// Panics in debug builds if `tid` is not strictly greater.
    pub fn push_monotonic(&mut self, tid: u32) {
        debug_assert!(self.chunks.last().is_none_or(|c| {
            (c.base() | c.container.last() as u32) < tid
        }));
        let key = (tid >> CHUNK_BITS) as u16;
        match self.chunks.last_mut() {
            Some(c) if c.key == key => c.container.push_monotonic(tid as u16),
            _ => self.chunks.push(Chunk {
                key,
                container: Container::Array(vec![tid as u16]),
            }),
        }
        self.len += 1;
    }

    /// Set intersection.
    pub fn intersect(&self, other: &Tidset) -> Tidset {
        let mut out = Tidset::new();
        self.intersect_into(other, &mut out);
        out
    }

    /// Set intersection into a caller-owned tidset, reusing its chunk-list
    /// allocation — the scratch path of CHARM and ELIMINATE. `out` is
    /// overwritten.
    pub fn intersect_into(&self, other: &Tidset, out: &mut Tidset) {
        // Universe short-circuits: full(n) ∩ x = x when x ⊆ 0..n.
        if self.is_full_range() && other.span() <= self.len {
            out.clone_from(other);
            return;
        }
        if other.is_full_range() && self.span() <= other.len {
            out.clone_from(self);
            return;
        }
        out.chunks.clear();
        out.len = 0;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.chunks.len() && j < other.chunks.len() {
            let (ca, cb) = (&self.chunks[i], &other.chunks[j]);
            match ca.key.cmp(&cb.key) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    if let Some(c) = container::intersect(&ca.container, &cb.container) {
                        out.len += c.card();
                        out.chunks.push(Chunk {
                            key: ca.key,
                            container: c,
                        });
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
    }

    /// `|self ∩ other|` without materializing the intersection — the
    /// record-level support check of the ELIMINATE operator. Never
    /// allocates, in any container-pair combination.
    pub fn intersect_count(&self, other: &Tidset) -> usize {
        let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
        while i < self.chunks.len() && j < other.chunks.len() {
            let (ca, cb) = (&self.chunks[i], &other.chunks[j]);
            match ca.key.cmp(&cb.key) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    n += container::intersect_count(&ca.container, &cb.container);
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// Set union.
    pub fn union(&self, other: &Tidset) -> Tidset {
        let mut chunks = Vec::with_capacity(self.chunks.len().max(other.chunks.len()));
        let mut len = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.chunks.len() || j < other.chunks.len() {
            let take_a = match (self.chunks.get(i), other.chunks.get(j)) {
                (Some(a), Some(b)) => match a.key.cmp(&b.key) {
                    Ordering::Less => Some(true),
                    Ordering::Greater => Some(false),
                    Ordering::Equal => None,
                },
                (Some(_), None) => Some(true),
                (None, Some(_)) => Some(false),
                (None, None) => unreachable!(),
            };
            let chunk = match take_a {
                Some(true) => {
                    let c = self.chunks[i].clone();
                    i += 1;
                    c
                }
                Some(false) => {
                    let c = other.chunks[j].clone();
                    j += 1;
                    c
                }
                None => {
                    let c = Chunk {
                        key: self.chunks[i].key,
                        container: container::union(
                            &self.chunks[i].container,
                            &other.chunks[j].container,
                        ),
                    };
                    i += 1;
                    j += 1;
                    c
                }
            };
            len += chunk.container.card();
            chunks.push(chunk);
        }
        Tidset { chunks, len }
    }

    /// Set difference `self \ other`.
    pub fn minus(&self, other: &Tidset) -> Tidset {
        let mut chunks = Vec::with_capacity(self.chunks.len());
        let mut len = 0usize;
        let mut j = 0usize;
        for ca in &self.chunks {
            while j < other.chunks.len() && other.chunks[j].key < ca.key {
                j += 1;
            }
            let kept = if j < other.chunks.len() && other.chunks[j].key == ca.key {
                container::subtract(&ca.container, &other.chunks[j].container)
            } else {
                Some(ca.container.clone())
            };
            if let Some(c) = kept {
                len += c.card();
                chunks.push(Chunk {
                    key: ca.key,
                    container: c,
                });
            }
        }
        Tidset { chunks, len }
    }

    /// True when `self ⊆ other`. Chunk-wise with layout-specialized
    /// containment kernels; never materializes.
    pub fn is_subset_of(&self, other: &Tidset) -> bool {
        if self.len > other.len {
            return false;
        }
        if other.is_full_range() && self.span() <= other.len {
            return true;
        }
        let mut j = 0usize;
        for ca in &self.chunks {
            while j < other.chunks.len() && other.chunks[j].key < ca.key {
                j += 1;
            }
            if j >= other.chunks.len() || other.chunks[j].key != ca.key {
                return false;
            }
            if !container::is_subset(&ca.container, &other.chunks[j].container) {
                return false;
            }
        }
        true
    }

    /// Append the snapshot binary encoding of this set (see
    /// `colarm::persist` for the enclosing file format): tag `2`, a varint
    /// chunk count, then per chunk a delta-coded key, a container type
    /// byte (`0` array / `1` bitmap / `2` runs) and the container payload:
    ///
    /// * array — varint cardinality, then the first low value followed by
    ///   delta-minus-one varints;
    /// * bitmap — varint cardinality, varint word count, raw little-endian
    ///   words (trailing zero words never written);
    /// * runs — varint run count, then per run a delta-coded start (gap
    ///   minus two from the previous end) and a varint inclusive length.
    ///
    /// Because every container is kept canonical, the chosen encoding is a
    /// deterministic function of the set's contents, and the decoder can
    /// (and does) reject a non-canonical container as corruption.
    pub fn encode_binary(&self, out: &mut Vec<u8>) {
        out.push(TAG_CHUNKED);
        codec::write_varint(out, self.chunks.len() as u64);
        let mut prev_key = 0u32;
        for (i, c) in self.chunks.iter().enumerate() {
            let delta = if i == 0 {
                c.key as u64
            } else {
                (c.key as u32 - prev_key - 1) as u64
            };
            codec::write_varint(out, delta);
            prev_key = c.key as u32;
            match c.container.repr() {
                Repr::Array(v) => {
                    out.push(0);
                    codec::write_varint(out, v.len() as u64);
                    let mut prev = 0u32;
                    for (k, &low) in v.iter().enumerate() {
                        let d = if k == 0 {
                            low as u64
                        } else {
                            (low as u32 - prev - 1) as u64
                        };
                        codec::write_varint(out, d);
                        prev = low as u32;
                    }
                }
                Repr::Bitmap { words, card } => {
                    out.push(1);
                    codec::write_varint(out, card as u64);
                    codec::write_varint(out, words.len() as u64);
                    for &w in words {
                        out.extend_from_slice(&w.to_le_bytes());
                    }
                }
                Repr::Runs(runs) => {
                    out.push(2);
                    codec::write_varint(out, runs.len() as u64);
                    let mut prev_end = 0u32;
                    for (k, &(s, e)) in runs.iter().enumerate() {
                        let d = if k == 0 {
                            s as u64
                        } else {
                            (s as u32 - prev_end - 2) as u64
                        };
                        codec::write_varint(out, d);
                        codec::write_varint(out, (e - s) as u64);
                        prev_end = e as u32;
                    }
                }
            }
        }
    }

    /// Borrowed per-chunk payloads in key order — the snapshot writer's
    /// window into the physical layout. Each item is `(chunk key,
    /// payload)`; the payload borrows straight from the container (owned
    /// or view) without copying.
    pub fn chunk_refs(&self) -> impl Iterator<Item = (u16, ChunkRef<'_>)> + '_ {
        self.chunks.iter().map(|c| {
            let payload = match c.container.repr() {
                Repr::Array(v) => ChunkRef::Array(v),
                Repr::Bitmap { words, card } => ChunkRef::Bitmap { words, card },
                Repr::Runs(r) => ChunkRef::Runs(r),
            };
            (c.key, payload)
        })
    }

    /// Assemble a tidset from per-chunk payloads produced by a trusted
    /// writer — the zero-copy snapshot load path. Array/Bitmap payloads
    /// arrive as [`SliceView`]s borrowing mapped file bytes; Runs arrive
    /// owned (decoded from a handful of varints).
    ///
    /// Validation here is structural and O(1) per chunk: keys strictly
    /// increasing, payloads non-empty, bitmap word counts/cardinalities
    /// in range with no trailing zero word (one word read — this is what
    /// keeps `Container::last` panic-free on hostile input), and the
    /// final span inside `universe`. Deep invariants (array sortedness,
    /// bitmap popcounts, canonical shape choice) are the writer's
    /// contract, pinned by the enclosing section CRC, which the mapped
    /// loader always validates before producing any answer.
    pub fn from_chunk_views(
        chunks: Vec<(u16, ChunkView)>,
        universe: u32,
    ) -> Result<Tidset, CodecError> {
        let corrupt = |message: String| CodecError { offset: 0, message };
        let mut out: Vec<Chunk> = Vec::with_capacity(chunks.len());
        let mut len = 0usize;
        let mut next_key = 0u32;
        for (key, view) in chunks {
            if (key as u32) < next_key {
                return Err(corrupt(format!("chunk key {key} out of order")));
            }
            next_key = key as u32 + 1;
            let container = match view {
                ChunkView::Array(v) => {
                    if v.is_empty() || v.len() > 1 << CHUNK_BITS {
                        return Err(corrupt(format!(
                            "array chunk {key} has invalid length {}",
                            v.len()
                        )));
                    }
                    Container::ArrayView(v)
                }
                ChunkView::Bitmap { words, card } => {
                    let n = words.len();
                    if n == 0 || n > 1 << (CHUNK_BITS - 6) {
                        return Err(corrupt(format!("bitmap chunk {key} claims {n} words")));
                    }
                    if words.as_slice()[n - 1] == 0 {
                        return Err(corrupt(format!(
                            "bitmap chunk {key} has a trailing zero word"
                        )));
                    }
                    if card == 0 || card as usize > n * 64 {
                        return Err(corrupt(format!(
                            "bitmap chunk {key} cardinality {card} out of range"
                        )));
                    }
                    Container::BitmapView { words, card }
                }
                ChunkView::Runs(runs) => {
                    if runs.is_empty() || runs.len() > 1 << (CHUNK_BITS - 1) {
                        return Err(corrupt(format!(
                            "run chunk {key} claims {} runs",
                            runs.len()
                        )));
                    }
                    let mut prev_end: i64 = -2;
                    for &(s, e) in &runs {
                        if (s as i64) < prev_end + 2 || e < s {
                            return Err(corrupt(format!("run chunk {key} is malformed")));
                        }
                        prev_end = e as i64;
                    }
                    Container::Runs(runs)
                }
            };
            len += container.card();
            out.push(Chunk { key, container });
        }
        let t = Tidset { chunks: out, len };
        if t.span() > universe as usize {
            return Err(corrupt(format!("tidset spans past universe {universe}")));
        }
        Ok(t)
    }

    /// Decode a set written by [`Tidset::encode_binary`] — or by the PR 1
    /// kernel, whose sparse (tag `0`) and dense (tag `1`) encodings remain
    /// readable so v1 snapshots keep loading. `universe` is the number of
    /// records the enclosing snapshot declares: any tid at or beyond it,
    /// an inconsistent cardinality, trailing zero words, a non-canonical
    /// container choice or an unknown tag are rejected as corruption —
    /// decoding never panics and never trusts a length prefix for
    /// allocation sizing.
    pub fn decode_binary(cur: &mut Cursor<'_>, universe: u32) -> Result<Tidset, CodecError> {
        let start = cur.pos();
        let corrupt = |pos: usize, message: String| CodecError { offset: pos, message };
        match cur.read_u8()? {
            TAG_SPARSE_V1 => {
                let len = cur.read_varint()? as usize;
                if len > universe as usize {
                    return Err(corrupt(
                        start,
                        format!("sparse tidset length {len} exceeds universe {universe}"),
                    ));
                }
                let mut v = Vec::with_capacity(len);
                let mut prev = 0u64;
                for i in 0..len {
                    let delta = cur.read_varint()?;
                    let t = if i == 0 {
                        delta
                    } else {
                        prev.checked_add(delta + 1).ok_or_else(|| {
                            corrupt(cur.pos(), "tid delta overflows".to_string())
                        })?
                    };
                    if t >= universe as u64 {
                        return Err(corrupt(
                            cur.pos(),
                            format!("tid {t} outside universe {universe}"),
                        ));
                    }
                    v.push(t as u32);
                    prev = t;
                }
                Ok(Tidset::from_sorted(v))
            }
            TAG_DENSE_V1 => {
                let len = cur.read_varint()? as usize;
                let num_words = cur.read_varint()? as usize;
                let max_words = (universe as usize).div_ceil(64);
                if len > universe as usize || num_words > max_words {
                    return Err(corrupt(
                        start,
                        format!(
                            "dense tidset claims {len} tids / {num_words} words over \
                             universe {universe}"
                        ),
                    ));
                }
                let mut words = Vec::with_capacity(num_words);
                for _ in 0..num_words {
                    words.push(cur.read_u64_le()?);
                }
                if words.last() == Some(&0) {
                    return Err(corrupt(start, "dense tidset has trailing zero words".into()));
                }
                let mut ids = Vec::with_capacity(len);
                for (i, &word) in words.iter().enumerate() {
                    let mut w = word;
                    while w != 0 {
                        let bit = w.trailing_zeros();
                        ids.push((i as u32) * 64 + bit);
                        w &= w - 1;
                    }
                }
                if ids.len() != len {
                    return Err(corrupt(
                        start,
                        format!(
                            "dense tidset population {} does not match length {len}",
                            ids.len()
                        ),
                    ));
                }
                if ids.last().is_some_and(|&t| t >= universe) {
                    return Err(corrupt(
                        start,
                        format!("dense tidset spans past universe {universe}"),
                    ));
                }
                Ok(Tidset::from_sorted(ids))
            }
            TAG_CHUNKED => {
                let num_chunks = cur.read_varint()? as usize;
                let max_chunks = (universe as usize).div_ceil(1 << CHUNK_BITS);
                if num_chunks > max_chunks {
                    return Err(corrupt(
                        start,
                        format!(
                            "chunked tidset claims {num_chunks} chunks over universe {universe}"
                        ),
                    ));
                }
                let mut chunks: Vec<Chunk> = Vec::with_capacity(num_chunks);
                let mut len = 0usize;
                let mut min_key = 0u64;
                for i in 0..num_chunks {
                    let delta = cur.read_varint()?;
                    let key = min_key + delta;
                    if key > u16::MAX as u64 {
                        return Err(corrupt(
                            cur.pos(),
                            format!("chunk key {key} out of range"),
                        ));
                    }
                    min_key = key + 1;
                    let container = decode_container(cur, i, start)?;
                    if container.kind()
                        != container::canonical_kind(
                            container.card(),
                            container.n_runs(),
                            container.last(),
                        )
                    {
                        return Err(corrupt(
                            start,
                            format!(
                                "non-canonical {} container for chunk {key}",
                                container.kind()
                            ),
                        ));
                    }
                    len += container.card();
                    chunks.push(Chunk {
                        key: key as u16,
                        container,
                    });
                }
                let t = Tidset { chunks, len };
                if t.span() > universe as usize {
                    return Err(corrupt(
                        start,
                        format!("tidset spans past universe {universe}"),
                    ));
                }
                Ok(t)
            }
            tag => Err(corrupt(start, format!("unknown tidset encoding tag {tag}"))),
        }
    }
}

/// Decode one container payload of the chunked (tag `2`) encoding.
/// Validation is structural (bounds, ordering, population counts); the
/// caller adds the canonical-choice and universe checks.
fn decode_container(
    cur: &mut Cursor<'_>,
    chunk_index: usize,
    start: usize,
) -> Result<Container, CodecError> {
    let corrupt = |pos: usize, message: String| CodecError { offset: pos, message };
    let _ = chunk_index;
    match cur.read_u8()? {
        0 => {
            let card = cur.read_varint()? as usize;
            if card == 0 || card > 1 << CHUNK_BITS {
                return Err(corrupt(
                    start,
                    format!("array container cardinality {card} invalid"),
                ));
            }
            let mut v = Vec::with_capacity(card);
            let mut prev = 0u64;
            for k in 0..card {
                let d = cur.read_varint()?;
                let val = if k == 0 { d } else { prev + d + 1 };
                if val > u16::MAX as u64 {
                    return Err(corrupt(
                        cur.pos(),
                        format!("array value {val} past chunk end"),
                    ));
                }
                v.push(val as u16);
                prev = val;
            }
            Ok(Container::Array(v))
        }
        1 => {
            let card = cur.read_varint()? as usize;
            let num_words = cur.read_varint()? as usize;
            if num_words == 0 || num_words > 1 << (CHUNK_BITS - 6) {
                return Err(corrupt(
                    start,
                    format!("bitmap container claims {num_words} words"),
                ));
            }
            let mut words = Vec::with_capacity(num_words);
            for _ in 0..num_words {
                words.push(cur.read_u64_le()?);
            }
            if words.last() == Some(&0) {
                return Err(corrupt(start, "bitmap container has trailing zero words".into()));
            }
            let pop: usize = words.iter().map(|w| w.count_ones() as usize).sum();
            if pop != card || card == 0 {
                return Err(corrupt(
                    start,
                    format!("bitmap population {pop} does not match cardinality {card}"),
                ));
            }
            Ok(Container::Bitmap {
                words,
                card: card as u32,
            })
        }
        2 => {
            let n = cur.read_varint()? as usize;
            if n == 0 || n > 1 << (CHUNK_BITS - 1) {
                return Err(corrupt(start, format!("run container claims {n} runs")));
            }
            let mut runs = Vec::with_capacity(n);
            let mut prev_end = 0u64;
            for k in 0..n {
                let d = cur.read_varint()?;
                let s = if k == 0 { d } else { prev_end + d + 2 };
                let l = cur.read_varint()?;
                let e = s + l;
                if e > u16::MAX as u64 {
                    return Err(corrupt(cur.pos(), format!("run end {e} past chunk end")));
                }
                runs.push((s as u16, e as u16));
                prev_end = e;
            }
            Ok(Container::Runs(runs))
        }
        kind => Err(corrupt(start, format!("unknown container kind byte {kind}"))),
    }
}

/// Ascending iterator over a chunked tidset.
pub struct TidIter<'a> {
    chunks: std::slice::Iter<'a, Chunk>,
    cur: Option<(u32, ContainerIter<'a>)>,
}

impl Iterator for TidIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if let Some((base, it)) = &mut self.cur {
                if let Some(low) = it.next() {
                    return Some(*base | low as u32);
                }
                self.cur = None;
            }
            let chunk = self.chunks.next()?;
            self.cur = Some((chunk.base(), chunk.container.iter()));
        }
    }
}

impl FromIterator<u32> for Tidset {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        Tidset::from_unsorted(iter)
    }
}

// Equality, ordering-free hashing and serde are all defined over the
// *logical* contents so that physical differences (e.g. an array chunk
// grown by `push_monotonic` past the point normalization would promote
// it) never leak.

impl PartialEq for Tidset {
    fn eq(&self, other: &Tidset) -> bool {
        if self.len != other.len || self.chunks.len() != other.chunks.len() {
            return false;
        }
        self.chunks.iter().zip(&other.chunks).all(|(a, b)| {
            a.key == b.key
                && if a.container.kind() == b.container.kind() {
                    // Canonical invariants (sorted arrays, trimmed bitmap
                    // words, coalesced runs) make same-kind equality a
                    // plain field comparison.
                    a.container == b.container
                } else {
                    a.container.iter().eq(b.container.iter())
                }
        })
    }
}

impl Eq for Tidset {}

impl Hash for Tidset {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_usize(self.len);
        for t in self.iter() {
            state.write_u32(t);
        }
    }
}

impl Serialize for Tidset {
    /// Serializes as a plain sorted id sequence — byte-identical to the
    /// historical `Vec<u32>` newtype format, whatever the representation.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len))?;
        for t in self.iter() {
            seq.serialize_element(&t)?;
        }
        seq.end()
    }
}

impl<'de> Deserialize<'de> for Tidset {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Tidset, D::Error> {
        struct TidsetVisitor;

        impl<'de> Visitor<'de> for TidsetVisitor {
            type Value = Tidset;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence of sorted u32 transaction ids")
            }

            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Tidset, A::Error> {
                let mut v: Vec<u32> = Vec::with_capacity(seq.size_hint().unwrap_or(0));
                while let Some(t) = seq.next_element()? {
                    v.push(t);
                }
                // Tolerate unsorted input from hand-edited snapshots.
                v.sort_unstable();
                v.dedup();
                Ok(Tidset::from_sorted(v))
            }
        }

        deserializer.deserialize_seq(TidsetVisitor)
    }
}

impl fmt::Display for Tidset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn ts(v: &[u32]) -> Tidset {
        Tidset::from_unsorted(v.iter().copied())
    }

    /// A bitmap-chunked set over `0..span` with every `step`-th tid.
    fn bitmapped(span: u32, step: u32) -> Tidset {
        let t = Tidset::from_sorted((0..span).step_by(step as usize).collect());
        assert!(
            t.shape().iter().all(|&(_, k)| k == ContainerKind::Bitmap),
            "span {span} step {step} must be bitmap-chunked, got {:?}",
            t.shape()
        );
        t
    }

    #[test]
    fn basic_ops() {
        let a = ts(&[1, 3, 5, 7, 9]);
        let b = ts(&[3, 4, 5, 6]);
        assert_eq!(a.intersect(&b), ts(&[3, 5]));
        assert_eq!(a.intersect_count(&b), 2);
        assert_eq!(a.union(&b), ts(&[1, 3, 4, 5, 6, 7, 9]));
        assert_eq!(a.minus(&b), ts(&[1, 7, 9]));
        assert!(ts(&[3, 5]).is_subset_of(&a));
        assert!(!ts(&[3, 4]).is_subset_of(&a));
        assert!(a.contains(7));
        assert!(!a.contains(8));
    }

    #[test]
    fn empty_and_full() {
        let e = Tidset::new();
        let f = Tidset::full(4);
        assert!(e.is_empty());
        assert_eq!(f.len(), 4);
        assert_eq!(e.intersect(&f), e);
        assert_eq!(e.union(&f), f);
        assert_eq!(f.minus(&e), f);
        assert!(e.is_subset_of(&f));
        assert_eq!(e.kind(), TidsetKind::Array);
    }

    #[test]
    fn full_is_runs_and_cheap() {
        // 1M tids = 16 chunks, one run each: O(universe / 2^16) memory.
        let f = Tidset::full(1_000_000);
        assert_eq!(f.len(), 1_000_000);
        assert_eq!(f.kind(), TidsetKind::Runs);
        assert_eq!(f.shape().len(), 16);
        assert!(f.contains(0) && f.contains(999_999) && !f.contains(1_000_000));
        // Universe short-circuit: full ∩ x = x, x ⊆ full.
        let x = ts(&[0, 17, 999_999]);
        assert_eq!(f.intersect(&x), x);
        assert_eq!(x.intersect(&f), x);
        assert!(x.is_subset_of(&f));
        assert_eq!(x.intersect_count(&f), 3);
        // Non-multiple-of-64 universe keeps an exact tail.
        let g = Tidset::full(100);
        assert_eq!(g.len(), 100);
        assert_eq!(g.to_vec(), (0..100).collect::<Vec<u32>>());
        // A single-tid tail chunk is canonically an array.
        let h = Tidset::full((1 << 16) + 1);
        assert_eq!(
            h.shape(),
            vec![(0, ContainerKind::Runs), (1, ContainerKind::Array)]
        );
        assert_eq!(h.kind(), TidsetKind::Mixed);
    }

    #[test]
    fn chunk_shape_follows_local_density() {
        // Scattered ids: array chunks.
        let sp = Tidset::from_sorted((0..200_000).step_by(64).collect());
        assert_eq!(sp.kind(), TidsetKind::Array);
        assert_eq!(sp.shape().len(), 4);
        // Half-density everywhere: bitmap chunks.
        assert_eq!(bitmapped(200_000, 2).kind(), TidsetKind::Bitmap);
        // Consecutive blocks: run chunks.
        let runs = Tidset::from_sorted((0..200_000).filter(|t| t % 1000 < 900).collect());
        assert_eq!(runs.kind(), TidsetKind::Runs);
        // Locally clustered, globally sparse — the drill-down shape the
        // PR 1 global rule mispredicted: chunk 0 dense, chunk 10 scattered.
        let mixed = Tidset::from_unsorted(
            (0..60_000u32)
                .step_by(2)
                .chain((655_360..660_000).step_by(97)),
        );
        assert_eq!(
            mixed.shape(),
            vec![(0, ContainerKind::Bitmap), (10, ContainerKind::Array)]
        );
        assert_eq!(mixed.kind(), TidsetKind::Mixed);
        // Operations re-normalize per chunk: dense minus most of itself
        // demotes to an array chunk. (A contiguous 0..8192 would be a run
        // chunk, so use half density to start from a bitmap.)
        let d = bitmapped(8_192, 2);
        let holes = Tidset::from_sorted((0..8_192).step_by(2).filter(|t| t % 64 != 0).collect());
        let diff = d.minus(&holes);
        assert_eq!(diff, Tidset::from_sorted((0..8_192).step_by(64).collect()));
        assert_eq!(diff.kind(), TidsetKind::Array);
    }

    #[test]
    fn shape_is_content_pure() {
        // The same logical set reaches the same physical shape through
        // any construction route — the invariant drill-down reuse and
        // parallel determinism lean on.
        let v: Vec<u32> = (0..100_000).filter(|t| (t / 7) % 3 != 0).collect();
        let a = Tidset::from_sorted(v.clone());
        let b = Tidset::from_unsorted(v.iter().rev().copied());
        let c = Tidset::full(100_000).minus(&Tidset::full(100_000).minus(&a));
        assert_eq!(a.shape(), b.shape());
        assert_eq!(a.shape(), c.shape());
        assert_eq!(a, c);
    }

    #[test]
    fn galloping_path_matches_merge_path() {
        // Small ∩ huge exercises the per-chunk galloping branch (1024 ids
        // per chunk stay array-shaped at step 64).
        let small = ts(&[0, 999, 5_000, 123_456, 999_936]);
        let large = Tidset::from_sorted((0..1_000_000).step_by(64).collect());
        assert_eq!(large.kind(), TidsetKind::Array);
        let expected: Vec<u32> = small.iter().filter(|t| t % 64 == 0).collect();
        assert_eq!(small.intersect(&large).to_vec(), expected);
        assert_eq!(small.intersect_count(&large), expected.len());
        assert_eq!(large.intersect_count(&small), expected.len());
    }

    #[test]
    fn cross_shape_ops_agree() {
        let d = bitmapped(10_000, 2); // evens: bitmap chunk
        let s = Tidset::from_sorted((0..10_000).step_by(33).collect()); // array chunk
        assert_eq!(s.kind(), TidsetKind::Array);
        let expected_inter: Vec<u32> =
            (0..10_000).step_by(33).filter(|t| t % 2 == 0).collect();
        assert_eq!(d.intersect(&s).to_vec(), expected_inter);
        assert_eq!(s.intersect(&d).to_vec(), expected_inter);
        assert_eq!(d.intersect_count(&s), expected_inter.len());
        assert_eq!(s.intersect_count(&d), expected_inter.len());
        let su: BTreeSet<u32> = s.iter().collect();
        let du: BTreeSet<u32> = d.iter().collect();
        let expected_union: Vec<u32> = su.union(&du).copied().collect();
        assert_eq!(d.union(&s).to_vec(), expected_union);
        assert_eq!(s.union(&d).to_vec(), expected_union);
        let expected_d_minus_s: Vec<u32> = du.difference(&su).copied().collect();
        assert_eq!(d.minus(&s).to_vec(), expected_d_minus_s);
        let expected_s_minus_d: Vec<u32> = su.difference(&du).copied().collect();
        assert_eq!(s.minus(&d).to_vec(), expected_s_minus_d);
        assert!(!s.is_subset_of(&d));
        assert!(d.intersect(&s).is_subset_of(&d));
    }

    #[test]
    fn bitmap_bitmap_ops_agree_with_reference() {
        let a = bitmapped(8_192, 2); // evens
        let b = bitmapped(8_192, 3); // multiples of 3
        let sa: BTreeSet<u32> = a.iter().collect();
        let sb: BTreeSet<u32> = b.iter().collect();
        let inter: Vec<u32> = sa.intersection(&sb).copied().collect();
        assert_eq!(a.intersect(&b).to_vec(), inter);
        assert_eq!(a.intersect_count(&b), inter.len());
        assert_eq!(
            a.union(&b).to_vec(),
            sa.union(&sb).copied().collect::<Vec<u32>>()
        );
        assert_eq!(
            a.minus(&b).to_vec(),
            sa.difference(&sb).copied().collect::<Vec<u32>>()
        );
        assert!(a.intersect(&b).is_subset_of(&a));
        assert!(a.intersect(&b).is_subset_of(&b));
        assert!(!a.is_subset_of(&b));
        // Multiples of 6 (= intersection) are a subset of both.
        let six = Tidset::from_sorted((0..8_192).step_by(6).collect());
        assert!(six.is_subset_of(&a));
        assert!(six.is_subset_of(&b));
    }

    #[test]
    fn word_and_chunk_boundaries() {
        // Tids straddling the 64-bit word edges must survive every
        // representation and operation.
        let edges = [0u32, 1, 62, 63, 64, 65, 126, 127, 128, 191, 192];
        let e = ts(&edges);
        let d = Tidset::full(256);
        assert_eq!(e.intersect(&d), e);
        assert_eq!(e.intersect_count(&d), edges.len());
        assert!(e.is_subset_of(&d));
        assert_eq!(d.minus(&e).len(), 256 - edges.len());
        for &t in &edges {
            assert!(d.contains(t));
            assert!(!d.minus(&e).contains(t));
        }
        // A set ending exactly at a word edge has no phantom tail.
        let exact = Tidset::full(128);
        assert_eq!(exact.len(), 128);
        assert!(!exact.contains(128));
        assert_eq!(exact.iter().last(), Some(127));
        // The 64k chunk edge: adjacent tids land in different chunks and
        // every operation stitches across them.
        let chunk_edge = ts(&[65_534, 65_535, 65_536, 65_537, 131_071, 131_072]);
        assert_eq!(chunk_edge.shape().len(), 3);
        assert_eq!(chunk_edge.to_vec(), vec![65_534, 65_535, 65_536, 65_537, 131_071, 131_072]);
        let left = ts(&[65_535, 131_072]);
        assert!(left.is_subset_of(&chunk_edge));
        assert_eq!(chunk_edge.minus(&left).len(), 4);
        assert_eq!(chunk_edge.intersect(&left), left);
        assert_eq!(Tidset::full(65_536).iter().last(), Some(65_535));
        assert!(!Tidset::full(65_536).contains(65_536));
    }

    #[test]
    fn intersect_into_reuses_buffers() {
        let a = bitmapped(100_000, 2);
        let b = bitmapped(100_000, 3);
        let mut scratch = Tidset::new();
        a.intersect_into(&b, &mut scratch);
        assert_eq!(scratch.len(), a.intersect_count(&b));
        // Reuse with different operands: contents fully replaced.
        let s1 = ts(&[2, 4, 100]);
        s1.intersect_into(&a, &mut scratch);
        assert_eq!(scratch.to_vec(), vec![2, 4, 100]);
        // Reuse for a bitmap-shaped result after an array-shaped one.
        a.intersect_into(&b, &mut scratch);
        assert_eq!(scratch.len(), a.intersect_count(&b));
    }

    #[test]
    fn push_monotonic_builds_sorted() {
        let mut t = Tidset::new();
        t.push_monotonic(2);
        t.push_monotonic(7);
        assert_eq!(t.to_vec(), &[2, 7]);
        // Run-shaped sets accept monotonic pushes too.
        let mut d = Tidset::full(128);
        d.push_monotonic(200);
        assert_eq!(d.len(), 129);
        assert!(d.contains(200));
        assert_eq!(d.iter().last(), Some(200));
        // Pushes crossing a chunk edge open a fresh chunk.
        let mut x = Tidset::new();
        x.push_monotonic(65_535);
        x.push_monotonic(65_536);
        assert_eq!(x.to_vec(), &[65_535, 65_536]);
        assert_eq!(x.shape().len(), 2);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn push_monotonic_rejects_regression() {
        let mut t = Tidset::new();
        t.push_monotonic(7);
        t.push_monotonic(2);
    }

    #[test]
    fn equality_and_hash_cross_representation() {
        use std::collections::hash_map::DefaultHasher;
        // Build the same logical set two ways: normalized (one run) and
        // via push_monotonic (left as a growing array chunk).
        let normalized = Tidset::full(256);
        let mut pushed = Tidset::new();
        for t in 0..256 {
            pushed.push_monotonic(t);
        }
        assert_eq!(normalized.kind(), TidsetKind::Runs);
        assert_eq!(pushed.kind(), TidsetKind::Array);
        assert_eq!(normalized, pushed);
        let hash = |t: &Tidset| {
            let mut h = DefaultHasher::new();
            t.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&normalized), hash(&pushed));
        assert_ne!(normalized, Tidset::full(255));
    }

    #[test]
    fn display_formats() {
        assert_eq!(ts(&[2, 5]).to_string(), "{2,5}");
        assert_eq!(Tidset::new().to_string(), "{}");
    }

    #[test]
    fn serde_format_is_a_plain_id_sequence() {
        // Every physical shape serializes identically to the historical
        // sorted-vector format, and round-trips.
        let sparse = ts(&[1, 5, 900_000]);
        assert_eq!(serde_json::to_string(&sparse).unwrap(), "[1,5,900000]");
        let run_set = Tidset::full(70);
        let json = serde_json::to_string(&run_set).unwrap();
        assert_eq!(
            json,
            format!(
                "[{}]",
                (0..70).map(|t| t.to_string()).collect::<Vec<_>>().join(",")
            )
        );
        for t in [&sparse, &run_set, &Tidset::new(), &Tidset::full(8_192)] {
            let back: Tidset =
                serde_json::from_str(&serde_json::to_string(t).unwrap()).unwrap();
            assert_eq!(&back, t);
        }
        // Restored sets re-pick the canonical per-chunk shape.
        let back: Tidset =
            serde_json::from_str(&serde_json::to_string(&Tidset::full(8_192)).unwrap())
                .unwrap();
        assert_eq!(back.kind(), TidsetKind::Runs);
    }

    #[test]
    fn binary_codec_round_trips_every_shape() {
        let universe = 100_000u32;
        let cases = [
            Tidset::new(),
            ts(&[0]),
            ts(&[99_999]),
            ts(&[1, 5, 900]),
            Tidset::from_sorted((0..4096).step_by(64).collect()), // array chunk
            Tidset::full(8_192),                                  // run chunk
            Tidset::from_sorted((0..50_000).step_by(2).collect()), // bitmap chunks
            ts(&[0, 63, 64, 127, 128, 4095]),                     // word edges
            ts(&[65_535, 65_536, 99_999]),                        // chunk edges
            Tidset::from_unsorted(
                (0..30_000u32)
                    .step_by(2)
                    .chain(65_536..66_000)
                    .chain((70_000..99_999).step_by(500)),
            ), // mixed chunk kinds
        ];
        for t in &cases {
            let mut buf = Vec::new();
            t.encode_binary(&mut buf);
            let mut cur = Cursor::new(&buf);
            let back = Tidset::decode_binary(&mut cur, universe).unwrap();
            assert!(cur.is_empty(), "codec must consume exactly its bytes");
            assert_eq!(&back, t);
            assert_eq!(back.shape(), t.shape(), "physical shape must be restored");
        }
    }

    #[test]
    fn binary_codec_reads_v1_encodings() {
        // Hand-written PR 1 sparse (tag 0) and dense (tag 1) buffers must
        // keep decoding — they are what v1 snapshots contain.
        let ids: Vec<u32> = vec![3, 4, 5, 900, 70_000];
        let mut sparse_v1 = vec![0u8];
        codec::write_varint(&mut sparse_v1, ids.len() as u64);
        let mut prev = 0u32;
        for (i, &t) in ids.iter().enumerate() {
            let delta = if i == 0 { t as u64 } else { (t - prev - 1) as u64 };
            codec::write_varint(&mut sparse_v1, delta);
            prev = t;
        }
        let mut cur = Cursor::new(&sparse_v1);
        let back = Tidset::decode_binary(&mut cur, 100_000).unwrap();
        assert!(cur.is_empty());
        assert_eq!(back, Tidset::from_sorted(ids));

        // Dense v1: every even tid below 1000.
        let mut words = vec![0x5555_5555_5555_5555u64; 1000 / 64];
        words.push(0x5555_5555_5555_5555u64 & ((1u64 << (1000 % 64)) - 1));
        let len: usize = words.iter().map(|w| w.count_ones() as usize).sum();
        let mut dense_v1 = vec![1u8];
        codec::write_varint(&mut dense_v1, len as u64);
        codec::write_varint(&mut dense_v1, words.len() as u64);
        for &w in &words {
            dense_v1.extend_from_slice(&w.to_le_bytes());
        }
        let mut cur = Cursor::new(&dense_v1);
        let back = Tidset::decode_binary(&mut cur, 100_000).unwrap();
        assert!(cur.is_empty());
        assert_eq!(back, Tidset::from_sorted((0..1000).step_by(2).collect()));
        // The decoded set holds the *canonical chunked* shape, not a
        // legacy one — v1 files load into the new layout transparently.
        assert_eq!(back.kind(), TidsetKind::Bitmap);
    }

    #[test]
    fn binary_codec_is_compact_for_runs_and_dense_sets() {
        // Consecutive tids: one run, a few bytes total.
        let run = Tidset::from_sorted((1000..1064).collect());
        let mut buf = Vec::new();
        run.encode_binary(&mut buf);
        assert!(buf.len() <= 16, "run encoding too large: {}", buf.len());
        // Full prefixes: one run per chunk.
        let dense_set = Tidset::full(64_000);
        let mut buf = Vec::new();
        dense_set.encode_binary(&mut buf);
        assert!(buf.len() <= 16, "full-range encoding too large: {}", buf.len());
        // Half density: ~1 bit per possible tid.
        let half = Tidset::from_sorted((0..64_000).step_by(2).collect());
        let mut buf = Vec::new();
        half.encode_binary(&mut buf);
        assert!(buf.len() <= 64_000 / 8 + 32, "bitmap encoding too large: {}", buf.len());
    }

    #[test]
    fn binary_codec_rejects_corruption() {
        let t = Tidset::from_unsorted(
            (0..30_000u32).step_by(2).chain(65_536..66_000).chain([70_001, 70_103]),
        );
        let mut good = Vec::new();
        t.encode_binary(&mut good);
        // Unknown tag.
        let mut bad = good.clone();
        bad[0] = 9;
        assert!(Tidset::decode_binary(&mut Cursor::new(&bad), 100_000).is_err());
        // Truncation at every prefix must error, never panic.
        for cut in 0..good.len() {
            let mut cur = Cursor::new(&good[..cut]);
            assert!(Tidset::decode_binary(&mut cur, 100_000).is_err(), "cut {cut}");
        }
        // Tid past the declared universe.
        let mut cur = Cursor::new(&good);
        assert!(Tidset::decode_binary(&mut cur, 100).is_err());
        // Bitmap population mismatch after a payload bit flip.
        let d = Tidset::from_sorted((0..20_000).step_by(2).collect());
        assert_eq!(d.kind(), TidsetKind::Bitmap);
        let mut dbuf = Vec::new();
        d.encode_binary(&mut dbuf);
        let flip = dbuf.len() - 1;
        dbuf[flip] ^= 1;
        assert!(Tidset::decode_binary(&mut Cursor::new(&dbuf), 100_000).is_err());
        // Legacy dense (tag 1): trailing zero words are still rejected.
        let mut zbuf = vec![1u8];
        codec::write_varint(&mut zbuf, 1); // one tid
        codec::write_varint(&mut zbuf, 2); // two words
        zbuf.extend_from_slice(&1u64.to_le_bytes());
        zbuf.extend_from_slice(&0u64.to_le_bytes());
        assert!(Tidset::decode_binary(&mut Cursor::new(&zbuf), 100_000).is_err());
        // A structurally valid but *non-canonical* container is rejected:
        // eleven consecutive values encoded as an array should be a run.
        let mut ncbuf = vec![TAG_CHUNKED];
        codec::write_varint(&mut ncbuf, 1); // one chunk
        codec::write_varint(&mut ncbuf, 0); // key 0
        ncbuf.push(0); // array container
        codec::write_varint(&mut ncbuf, 11);
        codec::write_varint(&mut ncbuf, 10); // first value 10
        for _ in 0..10 {
            codec::write_varint(&mut ncbuf, 0); // consecutive deltas
        }
        let err = Tidset::decode_binary(&mut Cursor::new(&ncbuf), 100_000).unwrap_err();
        assert!(err.message.contains("non-canonical"), "{}", err.message);
    }

    #[test]
    fn gallop_finds_exact_probe_boundaries() {
        // Regression from PR 1: a match sitting exactly at the galloping
        // probe index (a power of two) used to be excluded from the
        // binary-search range. Step 64 keeps the chunk array-shaped so
        // the gallop path actually runs.
        let large = Tidset::from_sorted((0..512 * 64).step_by(64).collect());
        assert_eq!(large.kind(), TidsetKind::Array);
        for probe in [0u32, 64, 128, 256, 512, 1024, 4096, 16384, 511 * 64] {
            let small = Tidset::from_sorted(vec![probe]);
            assert_eq!(small.intersect_count(&large), 1, "probe {probe}");
            assert!(small.is_subset_of(&large), "probe {probe}");
        }
    }

    /// Cross-check every operation against `BTreeSet` for one operand pair.
    fn check_against_reference(a: Vec<u32>, b: Vec<u32>) {
        let sa: BTreeSet<u32> = a.iter().copied().collect();
        let sb: BTreeSet<u32> = b.iter().copied().collect();
        let ta = Tidset::from_unsorted(a);
        let tb = Tidset::from_unsorted(b);
        let inter: Vec<u32> = sa.intersection(&sb).copied().collect();
        let uni: Vec<u32> = sa.union(&sb).copied().collect();
        let diff: Vec<u32> = sa.difference(&sb).copied().collect();
        assert_eq!(ta.intersect(&tb).to_vec(), inter);
        assert_eq!(tb.intersect(&ta).to_vec(), inter);
        assert_eq!(ta.intersect_count(&tb), inter.len());
        assert_eq!(tb.intersect_count(&ta), inter.len());
        assert_eq!(ta.union(&tb).to_vec(), uni);
        assert_eq!(tb.union(&ta).to_vec(), uni);
        assert_eq!(ta.minus(&tb).to_vec(), diff);
        assert_eq!(ta.is_subset_of(&tb), sa.is_subset(&sb));
        assert_eq!(tb.is_subset_of(&ta), sb.is_subset(&sa));
        let mut scratch = Tidset::new();
        ta.intersect_into(&tb, &mut scratch);
        assert_eq!(scratch.to_vec(), inter);
        assert_eq!(ta.iter().collect::<Vec<u32>>(), ta.to_vec());
    }

    #[test]
    fn shape_pair_matrix_matches_reference() {
        // Deterministic matrix crossing array, bitmap, run and mixed
        // chunk shapes, empty and full, with word- and chunk-edge tids.
        let variants: Vec<Vec<u32>> = vec![
            vec![],                                          // empty
            (0..256).collect(),                              // full range (one run)
            (0..4096).step_by(3).collect(),                  // bitmap chunk
            (0..4096).step_by(64).collect(),                 // array chunk
            vec![0, 63, 64, 127, 128, 4095],                 // word edges
            (100..164).collect(),                            // tiny run
            (0..100_000).step_by(7).collect(),               // bitmap chunks, big span
            vec![99_999],                                    // singleton at far edge
            vec![65_534, 65_535, 65_536, 131_073],           // chunk edges
            (0..30_000)
                .step_by(2)
                .chain((65_536..70_000).step_by(97))
                .collect(),                                  // mixed chunk kinds
        ];
        for a in &variants {
            for b in &variants {
                check_against_reference(a.clone(), b.clone());
            }
        }
    }

    proptest::proptest! {
        #[test]
        fn skewed_ops_match_btreeset_reference(
            a in proptest::collection::vec(0u32..4096, 0..6),
            b in proptest::collection::vec(0u32..4096, 200..400),
        ) {
            // Heavily lopsided sizes force the galloping path (and, at
            // 200–400 ids over a 4096 span, often bitmap chunks too).
            let sa: BTreeSet<u32> = a.iter().copied().collect();
            let sb: BTreeSet<u32> = b.iter().copied().collect();
            let ta = Tidset::from_unsorted(a);
            let tb = Tidset::from_unsorted(b);
            let inter: Vec<u32> = sa.intersection(&sb).copied().collect();
            let got = ta.intersect(&tb);
            proptest::prop_assert_eq!(got.to_vec(), inter.clone());
            proptest::prop_assert_eq!(ta.intersect_count(&tb), inter.len());
            proptest::prop_assert_eq!(tb.intersect_count(&ta), inter.len());
            proptest::prop_assert_eq!(ta.is_subset_of(&tb), sa.is_subset(&sb));
        }

        #[test]
        fn ops_match_btreeset_reference(a in proptest::collection::vec(0u32..512, 0..80),
                                        b in proptest::collection::vec(0u32..512, 0..80)) {
            let sa: BTreeSet<u32> = a.iter().copied().collect();
            let sb: BTreeSet<u32> = b.iter().copied().collect();
            let ta = Tidset::from_unsorted(a);
            let tb = Tidset::from_unsorted(b);
            let inter: Vec<u32> = sa.intersection(&sb).copied().collect();
            let uni: Vec<u32> = sa.union(&sb).copied().collect();
            let diff: Vec<u32> = sa.difference(&sb).copied().collect();
            let (got_i, got_u, got_d) = (ta.intersect(&tb), ta.union(&tb), ta.minus(&tb));
            proptest::prop_assert_eq!(got_i.to_vec(), inter.clone());
            proptest::prop_assert_eq!(ta.intersect_count(&tb), inter.len());
            proptest::prop_assert_eq!(got_u.to_vec(), uni);
            proptest::prop_assert_eq!(got_d.to_vec(), diff);
            proptest::prop_assert_eq!(ta.is_subset_of(&tb), sa.is_subset(&sb));
        }

        #[test]
        fn chunk_straddling_ops_match_btreeset_reference(
            a in proptest::collection::vec(60_000u32..75_000, 0..120),
            blocks in proptest::collection::vec((0u32..3, 0u32..65_000, 1u32..400), 0..4),
            b in proptest::collection::vec(0u32..200_000, 0..120),
        ) {
            // Values concentrated around the 65536 chunk edge, plus run
            // blocks injected into arbitrary chunks, crossed against a
            // scattered operand spanning four chunks.
            let mut av = a;
            for &(chunk, off, len) in &blocks {
                let s = chunk * 65_536 + off.min(65_535);
                av.extend(s..(s + len).min(chunk * 65_536 + 65_536));
            }
            let sa: BTreeSet<u32> = av.iter().copied().collect();
            let sb: BTreeSet<u32> = b.iter().copied().collect();
            let ta = Tidset::from_unsorted(av);
            let tb = Tidset::from_unsorted(b);
            let inter: Vec<u32> = sa.intersection(&sb).copied().collect();
            proptest::prop_assert_eq!(ta.intersect(&tb).to_vec(), inter.clone());
            proptest::prop_assert_eq!(ta.intersect_count(&tb), inter.len());
            proptest::prop_assert_eq!(
                ta.union(&tb).to_vec(),
                sa.union(&sb).copied().collect::<Vec<u32>>()
            );
            proptest::prop_assert_eq!(
                ta.minus(&tb).to_vec(),
                sa.difference(&sb).copied().collect::<Vec<u32>>()
            );
            proptest::prop_assert_eq!(ta.is_subset_of(&tb), sa.is_subset(&sb));
        }

        #[test]
        fn dense_pairs_match_btreeset_reference(
            a in proptest::collection::vec(0u32..1024, 300..600),
            b in proptest::collection::vec(0u32..1024, 300..600),
        ) {
            // 300–600 distinct-ish ids over a 1024 span: dense enough that
            // the chunk takes the bitmap (or runs) path.
            let sa: BTreeSet<u32> = a.iter().copied().collect();
            let sb: BTreeSet<u32> = b.iter().copied().collect();
            let ta = Tidset::from_unsorted(a);
            let tb = Tidset::from_unsorted(b);
            let inter: Vec<u32> = sa.intersection(&sb).copied().collect();
            proptest::prop_assert_eq!(ta.intersect(&tb).to_vec(), inter.clone());
            proptest::prop_assert_eq!(ta.intersect_count(&tb), inter.len());
            proptest::prop_assert_eq!(
                ta.union(&tb).to_vec(),
                sa.union(&sb).copied().collect::<Vec<u32>>()
            );
            proptest::prop_assert_eq!(
                ta.minus(&tb).to_vec(),
                sa.difference(&sb).copied().collect::<Vec<u32>>()
            );
            proptest::prop_assert_eq!(ta.is_subset_of(&tb), sa.is_subset(&sb));
        }

        #[test]
        fn binary_codec_round_trip(a in proptest::collection::vec(0u32..100_000, 0..400)) {
            let t = Tidset::from_unsorted(a);
            let mut buf = Vec::new();
            t.encode_binary(&mut buf);
            let back = Tidset::decode_binary(&mut Cursor::new(&buf), 100_000).unwrap();
            proptest::prop_assert_eq!(&back, &t);
        }

        /// Satellite: container encode/decode is lossless across all three
        /// container kinds and mixed-chunk tidsets, including tids hugging
        /// the chunk boundaries (0, 65535, 65536) and the top of the u32
        /// universe.
        #[test]
        fn container_codec_round_trips_all_kinds(
            scattered in proptest::collection::vec(0u32..262_144, 0..80),
            blocks in proptest::collection::vec((0u32..4, 0u32..65_000, 1u32..9_000), 0..5),
            noise_chunk in 0u32..4,
            boundary_mask in 0usize..32,
        ) {
            const BOUNDARY: [u32; 5] =
                [0, 65_535, 65_536, u32::MAX - 2, u32::MAX - 1];
            let mut v = scattered;
            // Dense / run blocks promote whole chunks to bitmap or runs.
            for &(chunk, off, len) in &blocks {
                let s = chunk * 65_536 + off.min(65_535);
                v.extend(s..(s + len).min(chunk * 65_536 + 65_536));
            }
            // Half-density noise in one chunk: a bitmap that is not runs.
            v.extend(((noise_chunk * 65_536)..(noise_chunk * 65_536 + 20_000)).step_by(2));
            for (bit, &t) in BOUNDARY.iter().enumerate() {
                if boundary_mask & (1 << bit) != 0 {
                    v.push(t);
                }
            }
            let t = Tidset::from_unsorted(v);
            let mut buf = Vec::new();
            t.encode_binary(&mut buf);
            let mut cur = Cursor::new(&buf);
            let back = Tidset::decode_binary(&mut cur, u32::MAX).unwrap();
            proptest::prop_assert!(cur.is_empty());
            proptest::prop_assert_eq!(&back, &t);
            proptest::prop_assert_eq!(back.shape(), t.shape());
        }

        #[test]
        fn serde_round_trip(a in proptest::collection::vec(0u32..100_000, 0..400)) {
            let t = Tidset::from_unsorted(a);
            let json = serde_json::to_string(&t).unwrap();
            let back: Tidset = serde_json::from_str(&json).unwrap();
            proptest::prop_assert_eq!(&back, &t);
            // And the wire format equals the plain vector encoding.
            proptest::prop_assert_eq!(json, serde_json::to_string(&t.to_vec()).unwrap());
        }
    }
}
