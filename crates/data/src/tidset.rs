//! Hybrid transaction-id sets: sorted vectors *or* packed bitmaps.
//!
//! Every support computation in COLARM is a tidset operation: the global
//! support of an itemset is the length of the intersection of its items'
//! tid-lists, and the *local* support w.r.t. a focal subset `DQ` is
//! `|tids(I) ∩ tids(DQ)|` (paper §2.2). Two physical representations are
//! kept behind one logical interface:
//!
//! * **Sparse** — a sorted, deduplicated `Vec<u32>`. Intersections switch
//!   from linear merging to galloping (exponential) search when the
//!   operand sizes are lopsided, which is the common case when
//!   intersecting a large itemset tid-list with a small focal subset.
//! * **Dense** — a packed `u64` bitmap over the record universe, chosen
//!   automatically when the set's population is a large fraction of its
//!   id span. On chess/pumsb-style dense datasets (paper §6) most item
//!   tid-lists cover 30–90 % of all records, and word-wise `AND` +
//!   `count_ones()` beats element-at-a-time merging by an order of
//!   magnitude; `intersect_count` and `is_subset_of` never materialize.
//!
//! The representation is an internal detail: equality, hashing, iteration
//! order and the serde format (a plain sorted id sequence, unchanged from
//! the all-sparse kernel) are representation-independent, so persisted
//! index snapshots round-trip across kernel versions.

use crate::codec::{self, CodecError, Cursor};
use serde::de::{SeqAccess, Visitor};
use serde::ser::SerializeSeq;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;
use std::hash::{Hash, Hasher};

/// How lopsided two sparse tidsets must be before intersection switches
/// from a linear merge to a gallop over the larger side.
const GALLOP_RATIO: usize = 16;

/// A set is stored dense when `len * DENSE_RATIO >= span` (span = largest
/// tid + 1): at 1/16 density the bitmap is no bigger than the sorted
/// vector (64-bit words vs 32-bit ids at 1:16 population) and word-wise
/// operations already win well before the memory break-even.
const DENSE_RATIO: usize = 16;

/// Sets smaller than this stay sparse regardless of density — bitmap
/// setup overhead dominates for tiny sets.
const DENSE_MIN_LEN: usize = 64;

/// Physical representation of a [`Tidset`].
#[derive(Debug, Clone)]
enum Repr {
    /// Strictly sorted, deduplicated ids.
    Sparse(Vec<u32>),
    /// Packed bitmap; bit `t` of `words[t / 64]` set iff `t` is present.
    /// Invariants: no trailing all-zero words, `len` = total popcount.
    Dense { words: Vec<u64>, len: usize },
}

/// The physical representation a [`Tidset`] currently uses.
///
/// Exposed for instrumentation only: the execution-metrics layer classifies
/// each intersection by its operand representations (sparse/sparse merge or
/// gallop, dense/dense word-AND, mixed bitmap probe). The kind is a
/// deterministic function of the set's contents, never of scheduling, so
/// metric totals built from it are reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TidsetKind {
    /// Sorted `Vec<u32>` of ids.
    Sparse,
    /// Packed `u64` bitmap.
    Dense,
}

/// A sorted, deduplicated set of transaction (record) ids.
#[derive(Debug, Clone)]
pub struct Tidset(Repr);

impl Default for Tidset {
    fn default() -> Self {
        Tidset(Repr::Sparse(Vec::new()))
    }
}

impl Tidset {
    /// The empty tidset.
    pub fn new() -> Self {
        Tidset::default()
    }

    /// Tidset of the full universe `0..n` — O(n/64) as a packed bitmap,
    /// not O(n) ids.
    pub fn full(n: u32) -> Self {
        let n = n as usize;
        if n < DENSE_MIN_LEN {
            return Tidset(Repr::Sparse((0..n as u32).collect()));
        }
        let full_words = n / 64;
        let mut words = vec![u64::MAX; full_words];
        let rem = n % 64;
        if rem > 0 {
            words.push((1u64 << rem) - 1);
        }
        Tidset(Repr::Dense { words, len: n })
    }

    /// Build from a vector that is already sorted and deduplicated.
    ///
    /// Sortedness is checked with a debug assertion only; callers on hot
    /// paths (the vertical index, CHARM) construct tidsets in order.
    pub fn from_sorted(v: Vec<u32>) -> Self {
        debug_assert!(v.windows(2).all(|w| w[0] < w[1]), "tidset must be strictly sorted");
        let mut t = Tidset(Repr::Sparse(v));
        t.normalize();
        t
    }

    /// Build from an arbitrary iterator (sorts and deduplicates).
    pub fn from_unsorted(it: impl IntoIterator<Item = u32>) -> Self {
        let mut v: Vec<u32> = it.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Tidset::from_sorted(v)
    }

    /// Number of tids — i.e. the absolute support count.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Sparse(v) => v.len(),
            Repr::Dense { len, .. } => *len,
        }
    }

    /// True when no tids are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The physical representation currently in use (see [`TidsetKind`]).
    #[inline]
    pub fn kind(&self) -> TidsetKind {
        match &self.0 {
            Repr::Sparse(_) => TidsetKind::Sparse,
            Repr::Dense { .. } => TidsetKind::Dense,
        }
    }

    /// Largest tid plus one (`0` for the empty set): the id span the
    /// density rule measures population against.
    fn span(&self) -> usize {
        match &self.0 {
            Repr::Sparse(v) => v.last().map_or(0, |&t| t as usize + 1),
            Repr::Dense { words, .. } => match words.last() {
                None => 0,
                Some(&w) => (words.len() - 1) * 64 + (64 - w.leading_zeros() as usize),
            },
        }
    }

    /// True when this set is exactly `{0, 1, …, len-1}` — a full range.
    /// O(1) and used to short-circuit operations against universe sets.
    fn is_full_range(&self) -> bool {
        self.len() == self.span()
    }

    /// Re-pick the physical representation for the current contents.
    /// Deterministic: the chosen representation depends only on the set's
    /// contents, never on the operation that produced it.
    fn normalize(&mut self) {
        let len = self.len();
        let span = self.span();
        let want_dense = len >= DENSE_MIN_LEN && len * DENSE_RATIO >= span;
        match (&mut self.0, want_dense) {
            (Repr::Sparse(v), true) => {
                let words = bitmap_of(v);
                self.0 = Repr::Dense { words, len };
            }
            (Repr::Dense { words, .. }, false) => {
                let ids = ids_of(words, len);
                self.0 = Repr::Sparse(ids);
            }
            _ => {}
        }
    }

    /// Membership test.
    pub fn contains(&self, tid: u32) -> bool {
        match &self.0 {
            Repr::Sparse(v) => v.binary_search(&tid).is_ok(),
            Repr::Dense { words, .. } => test_bit(words, tid),
        }
    }

    /// Copy out the tids as a sorted vector.
    pub fn to_vec(&self) -> Vec<u32> {
        match &self.0 {
            Repr::Sparse(v) => v.clone(),
            Repr::Dense { words, len } => ids_of(words, *len),
        }
    }

    /// Iterate tids in ascending order.
    pub fn iter(&self) -> TidIter<'_> {
        match &self.0 {
            Repr::Sparse(v) => TidIter::Sparse(v.iter()),
            Repr::Dense { words, .. } => TidIter::Dense {
                words,
                word_idx: 0,
                current: words.first().copied().unwrap_or(0),
            },
        }
    }

    /// Append a tid that is strictly greater than every present tid.
    ///
    /// # Panics
    /// Panics in debug builds if `tid` is not strictly greater.
    pub fn push_monotonic(&mut self, tid: u32) {
        match &mut self.0 {
            Repr::Sparse(v) => {
                debug_assert!(v.last().is_none_or(|&last| last < tid));
                v.push(tid);
            }
            Repr::Dense { words, len } => {
                debug_assert!(words.last().is_none_or(|&w| {
                    (words.len() - 1) * 64 + (64 - w.leading_zeros() as usize) <= tid as usize
                }));
                let w = tid as usize / 64;
                if words.len() <= w {
                    words.resize(w + 1, 0);
                }
                words[w] |= 1u64 << (tid % 64);
                *len += 1;
            }
        }
    }

    /// Set intersection.
    pub fn intersect(&self, other: &Tidset) -> Tidset {
        let mut out = Tidset::new();
        self.intersect_into(other, &mut out);
        out
    }

    /// Set intersection into a caller-owned tidset, reusing its buffers —
    /// the allocation-free inner loop of CHARM and the ELIMINATE scratch
    /// path. `out` is overwritten.
    pub fn intersect_into(&self, other: &Tidset, out: &mut Tidset) {
        // Universe short-circuits: full(n) ∩ x = x when x ⊆ 0..n.
        if self.is_full_range() && other.span() <= self.len() {
            out.clone_from(other);
            return;
        }
        if other.is_full_range() && self.span() <= other.len() {
            out.clone_from(self);
            return;
        }
        match (&self.0, &other.0) {
            (Repr::Sparse(a), Repr::Sparse(b)) => {
                let buf = out.take_sparse_buf();
                out.0 = Repr::Sparse(sparse_intersect(a, b, buf));
            }
            (Repr::Sparse(s), Repr::Dense { words, .. })
            | (Repr::Dense { words, .. }, Repr::Sparse(s)) => {
                let mut buf = out.take_sparse_buf();
                buf.extend(s.iter().copied().filter(|&t| test_bit(words, t)));
                out.0 = Repr::Sparse(buf);
            }
            (Repr::Dense { words: a, .. }, Repr::Dense { words: b, .. }) => {
                let mut buf = out.take_dense_buf();
                let mut len = 0usize;
                buf.extend(a.iter().zip(b.iter()).map(|(&x, &y)| {
                    let w = x & y;
                    len += w.count_ones() as usize;
                    w
                }));
                while buf.last() == Some(&0) {
                    buf.pop();
                }
                out.0 = Repr::Dense { words: buf, len };
            }
        }
        out.normalize();
    }

    /// `|self ∩ other|` without materializing the intersection — the
    /// record-level support check of the ELIMINATE operator. Never
    /// allocates, in any representation pair.
    pub fn intersect_count(&self, other: &Tidset) -> usize {
        match (&self.0, &other.0) {
            (Repr::Sparse(a), Repr::Sparse(b)) => sparse_intersect_count(a, b),
            (Repr::Sparse(s), Repr::Dense { words, .. })
            | (Repr::Dense { words, .. }, Repr::Sparse(s)) => {
                s.iter().filter(|&&t| test_bit(words, t)).count()
            }
            (Repr::Dense { words: a, .. }, Repr::Dense { words: b, .. }) => a
                .iter()
                .zip(b.iter())
                .map(|(&x, &y)| (x & y).count_ones() as usize)
                .sum(),
        }
    }

    /// Set union.
    pub fn union(&self, other: &Tidset) -> Tidset {
        let mut out = match (&self.0, &other.0) {
            (Repr::Sparse(a), Repr::Sparse(b)) => {
                let mut v = Vec::with_capacity(a.len() + b.len());
                let (mut i, mut j) = (0usize, 0usize);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => {
                            v.push(a[i]);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            v.push(b[j]);
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            v.push(a[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                v.extend_from_slice(&a[i..]);
                v.extend_from_slice(&b[j..]);
                Tidset(Repr::Sparse(v))
            }
            (Repr::Sparse(s), Repr::Dense { words, len })
            | (Repr::Dense { words, len }, Repr::Sparse(s)) => {
                let mut w = words.clone();
                let mut n = *len;
                for &t in s {
                    let idx = t as usize / 64;
                    if w.len() <= idx {
                        w.resize(idx + 1, 0);
                    }
                    let mask = 1u64 << (t % 64);
                    if w[idx] & mask == 0 {
                        w[idx] |= mask;
                        n += 1;
                    }
                }
                Tidset(Repr::Dense { words: w, len: n })
            }
            (Repr::Dense { words: a, .. }, Repr::Dense { words: b, .. }) => {
                let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
                let mut w = long.clone();
                let mut n = 0usize;
                for (x, &y) in w.iter_mut().zip(short.iter()) {
                    *x |= y;
                }
                for x in &w {
                    n += x.count_ones() as usize;
                }
                Tidset(Repr::Dense { words: w, len: n })
            }
        };
        out.normalize();
        out
    }

    /// Set difference `self \ other`.
    pub fn minus(&self, other: &Tidset) -> Tidset {
        let mut out = match (&self.0, &other.0) {
            (Repr::Sparse(a), Repr::Sparse(b)) => {
                let mut v = Vec::with_capacity(a.len());
                let (mut i, mut j) = (0usize, 0usize);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => {
                            v.push(a[i]);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            i += 1;
                            j += 1;
                        }
                    }
                }
                v.extend_from_slice(&a[i..]);
                Tidset(Repr::Sparse(v))
            }
            (Repr::Sparse(s), Repr::Dense { words, .. }) => Tidset(Repr::Sparse(
                s.iter().copied().filter(|&t| !test_bit(words, t)).collect(),
            )),
            (Repr::Dense { words, len }, Repr::Sparse(s)) => {
                let mut w = words.clone();
                let mut n = *len;
                for &t in s {
                    let idx = t as usize / 64;
                    if idx < w.len() {
                        let mask = 1u64 << (t % 64);
                        if w[idx] & mask != 0 {
                            w[idx] &= !mask;
                            n -= 1;
                        }
                    }
                }
                while w.last() == Some(&0) {
                    w.pop();
                }
                Tidset(Repr::Dense { words: w, len: n })
            }
            (Repr::Dense { words: a, .. }, Repr::Dense { words: b, .. }) => {
                let mut n = 0usize;
                let mut w: Vec<u64> = a
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| {
                        let r = x & !b.get(i).copied().unwrap_or(0);
                        n += r.count_ones() as usize;
                        r
                    })
                    .collect();
                while w.last() == Some(&0) {
                    w.pop();
                }
                Tidset(Repr::Dense { words: w, len: n })
            }
        };
        out.normalize();
        out
    }

    /// True when `self ⊆ other`. Word-wise (no counting, early exit) for
    /// dense⊆dense; never materializes in any representation pair.
    pub fn is_subset_of(&self, other: &Tidset) -> bool {
        if self.len() > other.len() {
            return false;
        }
        if other.is_full_range() && self.span() <= other.len() {
            return true;
        }
        match (&self.0, &other.0) {
            (Repr::Dense { words: a, .. }, Repr::Dense { words: b, .. }) => {
                a.len() <= b.len() && a.iter().zip(b.iter()).all(|(&x, &y)| x & !y == 0)
            }
            (Repr::Sparse(s), Repr::Dense { words, .. }) => {
                s.iter().all(|&t| test_bit(words, t))
            }
            _ => self.intersect_count(other) == self.len(),
        }
    }

    /// Append the snapshot binary encoding of this set (see
    /// `colarm::persist` for the enclosing file format). The encoding
    /// exploits the hybrid representation directly:
    ///
    /// * sparse — tag `0`, varint length, then the first tid followed by
    ///   delta-minus-one varints (consecutive runs cost one byte per tid);
    /// * dense — tag `1`, varint population count, varint word count, then
    ///   the raw little-endian bitmap words (one *bit* per possible tid).
    ///
    /// Because [`Tidset`] keeps its representation normalized, the chosen
    /// encoding is a deterministic function of the set's contents.
    pub fn encode_binary(&self, out: &mut Vec<u8>) {
        match &self.0 {
            Repr::Sparse(v) => {
                out.push(0);
                codec::write_varint(out, v.len() as u64);
                let mut prev = 0u32;
                for (i, &t) in v.iter().enumerate() {
                    let delta = if i == 0 { t as u64 } else { (t - prev - 1) as u64 };
                    codec::write_varint(out, delta);
                    prev = t;
                }
            }
            Repr::Dense { words, len } => {
                out.push(1);
                codec::write_varint(out, *len as u64);
                codec::write_varint(out, words.len() as u64);
                for &w in words {
                    out.extend_from_slice(&w.to_le_bytes());
                }
            }
        }
    }

    /// Decode a set written by [`Tidset::encode_binary`]. `universe` is the
    /// number of records the enclosing snapshot declares: any tid at or
    /// beyond it, an inconsistent population count, trailing zero words or
    /// an unknown tag are rejected as corruption — decoding never panics
    /// and never trusts a length prefix for allocation sizing.
    pub fn decode_binary(cur: &mut Cursor<'_>, universe: u32) -> Result<Tidset, CodecError> {
        let start = cur.pos();
        let corrupt = |pos: usize, message: String| CodecError { offset: pos, message };
        match cur.read_u8()? {
            0 => {
                let len = cur.read_varint()? as usize;
                if len > universe as usize {
                    return Err(corrupt(
                        start,
                        format!("sparse tidset length {len} exceeds universe {universe}"),
                    ));
                }
                let mut v = Vec::with_capacity(len);
                let mut prev = 0u64;
                for i in 0..len {
                    let delta = cur.read_varint()?;
                    let t = if i == 0 {
                        delta
                    } else {
                        prev.checked_add(delta + 1).ok_or_else(|| {
                            corrupt(cur.pos(), "tid delta overflows".to_string())
                        })?
                    };
                    if t >= universe as u64 {
                        return Err(corrupt(
                            cur.pos(),
                            format!("tid {t} outside universe {universe}"),
                        ));
                    }
                    v.push(t as u32);
                    prev = t;
                }
                Ok(Tidset::from_sorted(v))
            }
            1 => {
                let len = cur.read_varint()? as usize;
                let num_words = cur.read_varint()? as usize;
                let max_words = (universe as usize).div_ceil(64);
                if len > universe as usize || num_words > max_words {
                    return Err(corrupt(
                        start,
                        format!(
                            "dense tidset claims {len} tids / {num_words} words over \
                             universe {universe}"
                        ),
                    ));
                }
                let mut words = Vec::with_capacity(num_words);
                for _ in 0..num_words {
                    words.push(cur.read_u64_le()?);
                }
                if words.last() == Some(&0) {
                    return Err(corrupt(start, "dense tidset has trailing zero words".into()));
                }
                let pop: usize = words.iter().map(|w| w.count_ones() as usize).sum();
                if pop != len {
                    return Err(corrupt(
                        start,
                        format!("dense tidset population {pop} does not match length {len}"),
                    ));
                }
                let mut t = Tidset(Repr::Dense { words, len });
                if t.span() > universe as usize {
                    return Err(corrupt(
                        start,
                        format!("dense tidset spans past universe {universe}"),
                    ));
                }
                t.normalize();
                Ok(t)
            }
            tag => Err(corrupt(start, format!("unknown tidset encoding tag {tag}"))),
        }
    }

    /// Take (and clear) a sparse buffer out of `self`, reusing its
    /// allocation when the representation matches.
    fn take_sparse_buf(&mut self) -> Vec<u32> {
        match std::mem::replace(&mut self.0, Repr::Sparse(Vec::new())) {
            Repr::Sparse(mut v) => {
                v.clear();
                v
            }
            Repr::Dense { .. } => Vec::new(),
        }
    }

    /// Take (and clear) a dense word buffer out of `self`, reusing its
    /// allocation when the representation matches.
    fn take_dense_buf(&mut self) -> Vec<u64> {
        match std::mem::replace(&mut self.0, Repr::Sparse(Vec::new())) {
            Repr::Dense { mut words, .. } => {
                words.clear();
                words
            }
            Repr::Sparse(_) => Vec::new(),
        }
    }
}

/// Sparse ids → packed bitmap words.
fn bitmap_of(ids: &[u32]) -> Vec<u64> {
    let span = ids.last().map_or(0, |&t| t as usize + 1);
    let mut words = vec![0u64; span.div_ceil(64)];
    for &t in ids {
        words[t as usize / 64] |= 1u64 << (t % 64);
    }
    words
}

/// Packed bitmap words → sparse ids (capacity-exact).
fn ids_of(words: &[u64], len: usize) -> Vec<u32> {
    let mut v = Vec::with_capacity(len);
    for (i, &word) in words.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            let bit = w.trailing_zeros();
            v.push((i as u32) * 64 + bit);
            w &= w - 1;
        }
    }
    v
}

#[inline]
fn test_bit(words: &[u64], tid: u32) -> bool {
    words
        .get(tid as usize / 64)
        .is_some_and(|&w| w & (1u64 << (tid % 64)) != 0)
}

/// Sparse ∩ sparse into a reused buffer: linear merge, or galloping when
/// the sizes are lopsided.
fn sparse_intersect(a: &[u32], b: &[u32], mut out: Vec<u32>) -> Vec<u32> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return out;
    }
    out.reserve(small.len());
    if large.len() / small.len() >= GALLOP_RATIO {
        let mut base = 0usize;
        for &t in small {
            match gallop(&large[base..], t) {
                Ok(off) => {
                    out.push(t);
                    base += off + 1;
                }
                Err(off) => base += off,
            }
            if base >= large.len() {
                break;
            }
        }
    } else {
        let (mut i, mut j) = (0usize, 0usize);
        while i < small.len() && j < large.len() {
            match small[i].cmp(&large[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(small[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    out
}

/// `|a ∩ b|` for sorted slices, merge or gallop, no allocation.
fn sparse_intersect_count(a: &[u32], b: &[u32]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return 0;
    }
    let mut count = 0usize;
    if large.len() / small.len() >= GALLOP_RATIO {
        let mut base = 0usize;
        for &t in small {
            match gallop(&large[base..], t) {
                Ok(off) => {
                    count += 1;
                    base += off + 1;
                }
                Err(off) => base += off,
            }
            if base >= large.len() {
                break;
            }
        }
    } else {
        let (mut i, mut j) = (0usize, 0usize);
        while i < small.len() && j < large.len() {
            match small[i].cmp(&large[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    count
}

/// Ascending iterator over either representation.
pub enum TidIter<'a> {
    /// Sparse: defer to the slice iterator.
    Sparse(std::slice::Iter<'a, u32>),
    /// Dense: walk set bits word by word.
    Dense {
        /// The bitmap being walked.
        words: &'a [u64],
        /// Index of the word `current` was loaded from.
        word_idx: usize,
        /// Remaining (not yet yielded) bits of the current word.
        current: u64,
    },
}

impl Iterator for TidIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            TidIter::Sparse(it) => it.next().copied(),
            TidIter::Dense {
                words,
                word_idx,
                current,
            } => {
                while *current == 0 {
                    *word_idx += 1;
                    if *word_idx >= words.len() {
                        return None;
                    }
                    *current = words[*word_idx];
                }
                let bit = current.trailing_zeros();
                *current &= *current - 1;
                Some((*word_idx as u32) * 64 + bit)
            }
        }
    }
}

impl FromIterator<u32> for Tidset {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        Tidset::from_unsorted(iter)
    }
}

// Equality, ordering-free hashing and serde are all defined over the
// *logical* contents so that representation differences (e.g. a sparse set
// built by `push_monotonic` that has crossed the density threshold but not
// been normalized) never leak.

impl PartialEq for Tidset {
    fn eq(&self, other: &Tidset) -> bool {
        if self.len() != other.len() {
            return false;
        }
        match (&self.0, &other.0) {
            (Repr::Sparse(a), Repr::Sparse(b)) => a == b,
            (Repr::Dense { words: a, .. }, Repr::Dense { words: b, .. }) => {
                // Trailing zero words are trimmed by every constructor, so
                // equal contents ⇒ equal word vectors.
                a == b
            }
            _ => self.iter().eq(other.iter()),
        }
    }
}

impl Eq for Tidset {}

impl Hash for Tidset {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_usize(self.len());
        for t in self.iter() {
            state.write_u32(t);
        }
    }
}

impl Serialize for Tidset {
    /// Serializes as a plain sorted id sequence — byte-identical to the
    /// historical `Vec<u32>` newtype format, whatever the representation.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for t in self.iter() {
            seq.serialize_element(&t)?;
        }
        seq.end()
    }
}

impl<'de> Deserialize<'de> for Tidset {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Tidset, D::Error> {
        struct TidsetVisitor;

        impl<'de> Visitor<'de> for TidsetVisitor {
            type Value = Tidset;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence of sorted u32 transaction ids")
            }

            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Tidset, A::Error> {
                let mut v: Vec<u32> = Vec::with_capacity(seq.size_hint().unwrap_or(0));
                while let Some(t) = seq.next_element()? {
                    v.push(t);
                }
                // Tolerate unsorted input from hand-edited snapshots.
                v.sort_unstable();
                v.dedup();
                Ok(Tidset::from_sorted(v))
            }
        }

        deserializer.deserialize_seq(TidsetVisitor)
    }
}

impl fmt::Display for Tidset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

/// Binary-search `slice` for `x` with an exponential (galloping) prefix
/// probe; returns `Ok(pos)` / `Err(insertion_pos)` like `binary_search`.
fn gallop(slice: &[u32], x: u32) -> Result<usize, usize> {
    let mut hi = 1usize;
    while hi < slice.len() && slice[hi] < x {
        hi <<= 1;
    }
    let lo = hi >> 1;
    // `slice[lo] < x` (for lo > 0) and either `hi ≥ len` or `slice[hi] ≥ x`,
    // so the first candidate position is in `[lo, hi]` — inclusive of `hi`.
    let hi = (hi + 1).min(slice.len());
    slice[lo..hi].binary_search(&x).map(|p| p + lo).map_err(|p| p + lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn ts(v: &[u32]) -> Tidset {
        Tidset::from_unsorted(v.iter().copied())
    }

    /// A dense-represented set over `0..span` with every `step`-th tid.
    fn dense(span: u32, step: u32) -> Tidset {
        let t = Tidset::from_sorted((0..span).step_by(step as usize).collect());
        assert!(
            matches!(t.0, Repr::Dense { .. }),
            "span {span} step {step} must be dense-represented"
        );
        t
    }

    #[test]
    fn basic_ops() {
        let a = ts(&[1, 3, 5, 7, 9]);
        let b = ts(&[3, 4, 5, 6]);
        assert_eq!(a.intersect(&b), ts(&[3, 5]));
        assert_eq!(a.intersect_count(&b), 2);
        assert_eq!(a.union(&b), ts(&[1, 3, 4, 5, 6, 7, 9]));
        assert_eq!(a.minus(&b), ts(&[1, 7, 9]));
        assert!(ts(&[3, 5]).is_subset_of(&a));
        assert!(!ts(&[3, 4]).is_subset_of(&a));
        assert!(a.contains(7));
        assert!(!a.contains(8));
    }

    #[test]
    fn empty_and_full() {
        let e = Tidset::new();
        let f = Tidset::full(4);
        assert!(e.is_empty());
        assert_eq!(f.len(), 4);
        assert_eq!(e.intersect(&f), e);
        assert_eq!(e.union(&f), f);
        assert_eq!(f.minus(&e), f);
        assert!(e.is_subset_of(&f));
    }

    #[test]
    fn full_is_dense_and_cheap() {
        let f = Tidset::full(1_000_000);
        assert_eq!(f.len(), 1_000_000);
        assert!(matches!(f.0, Repr::Dense { .. }));
        assert!(f.contains(0) && f.contains(999_999) && !f.contains(1_000_000));
        // Universe short-circuit: full ∩ x = x, x ⊆ full.
        let x = ts(&[0, 17, 999_999]);
        assert_eq!(f.intersect(&x), x);
        assert_eq!(x.intersect(&f), x);
        assert!(x.is_subset_of(&f));
        assert_eq!(x.intersect_count(&f), 3);
        // Non-multiple-of-64 universe keeps an exact tail word.
        let g = Tidset::full(100);
        assert_eq!(g.len(), 100);
        assert_eq!(g.to_vec(), (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn representation_follows_density() {
        // 4096 ids over a 4096 span: dense.
        assert!(matches!(dense(4096, 1).0, Repr::Dense { .. }));
        // Every 64th id (density 1/64): sparse.
        let sp = Tidset::from_sorted((0..4096).step_by(64).collect());
        assert!(matches!(sp.0, Repr::Sparse(_)));
        // Tiny sets stay sparse even at 100% density.
        let tiny = ts(&[0, 1, 2, 3]);
        assert!(matches!(tiny.0, Repr::Sparse(_)));
        // Operations re-normalize: a dense set minus most of itself
        // becomes sparse again.
        let d = dense(4096, 1);
        let holes = Tidset::from_sorted((0..4096).filter(|t| t % 64 != 0).collect());
        let diff = d.minus(&holes);
        assert_eq!(diff, sp);
        assert!(matches!(diff.0, Repr::Sparse(_)));
    }

    #[test]
    fn galloping_path_matches_merge_path() {
        // Small ∩ huge exercises the galloping branch (the huge side stays
        // sparse at 1/3 step over a 1M span? no — 1/3 density is dense;
        // use a 1/64 step so the large side is sparse).
        let small = ts(&[0, 999, 5_000, 123_456, 999_936]);
        let large = Tidset::from_sorted((0..1_000_000).step_by(64).collect());
        assert!(matches!(large.0, Repr::Sparse(_)));
        let expected: Vec<u32> = small.iter().filter(|t| t % 64 == 0).collect();
        assert_eq!(small.intersect(&large).to_vec(), expected);
        assert_eq!(small.intersect_count(&large), expected.len());
        assert_eq!(large.intersect_count(&small), expected.len());
    }

    #[test]
    fn cross_representation_ops_agree() {
        let d = dense(10_000, 2); // evens, dense
        let s = Tidset::from_sorted((0..10_000).step_by(33).collect()); // sparse
        assert!(matches!(s.0, Repr::Sparse(_)));
        let expected_inter: Vec<u32> =
            (0..10_000).step_by(33).filter(|t| t % 2 == 0).collect();
        assert_eq!(d.intersect(&s).to_vec(), expected_inter);
        assert_eq!(s.intersect(&d).to_vec(), expected_inter);
        assert_eq!(d.intersect_count(&s), expected_inter.len());
        assert_eq!(s.intersect_count(&d), expected_inter.len());
        let su: BTreeSet<u32> = s.iter().collect();
        let du: BTreeSet<u32> = d.iter().collect();
        let expected_union: Vec<u32> = su.union(&du).copied().collect();
        assert_eq!(d.union(&s).to_vec(), expected_union);
        assert_eq!(s.union(&d).to_vec(), expected_union);
        let expected_d_minus_s: Vec<u32> = du.difference(&su).copied().collect();
        assert_eq!(d.minus(&s).to_vec(), expected_d_minus_s);
        let expected_s_minus_d: Vec<u32> = su.difference(&du).copied().collect();
        assert_eq!(s.minus(&d).to_vec(), expected_s_minus_d);
        assert!(!s.is_subset_of(&d));
        assert!(d.intersect(&s).is_subset_of(&d));
    }

    #[test]
    fn dense_dense_ops_agree_with_reference() {
        let a = dense(8_192, 2); // evens
        let b = dense(8_192, 3); // multiples of 3
        let sa: BTreeSet<u32> = a.iter().collect();
        let sb: BTreeSet<u32> = b.iter().collect();
        let inter: Vec<u32> = sa.intersection(&sb).copied().collect();
        assert_eq!(a.intersect(&b).to_vec(), inter);
        assert_eq!(a.intersect_count(&b), inter.len());
        assert_eq!(
            a.union(&b).to_vec(),
            sa.union(&sb).copied().collect::<Vec<u32>>()
        );
        assert_eq!(
            a.minus(&b).to_vec(),
            sa.difference(&sb).copied().collect::<Vec<u32>>()
        );
        assert!(a.intersect(&b).is_subset_of(&a));
        assert!(a.intersect(&b).is_subset_of(&b));
        assert!(!a.is_subset_of(&b));
        // Multiples of 6 (= intersection) are a subset of both.
        let six = Tidset::from_sorted((0..8_192).step_by(6).collect());
        assert!(six.is_subset_of(&a));
        assert!(six.is_subset_of(&b));
    }

    #[test]
    fn word_edge_boundaries() {
        // Tids straddling the 64-bit word edges must survive every
        // representation and operation.
        let edges = [0u32, 1, 62, 63, 64, 65, 126, 127, 128, 191, 192];
        let e = ts(&edges);
        let d = dense(256, 1);
        assert_eq!(e.intersect(&d), e);
        assert_eq!(e.intersect_count(&d), edges.len());
        assert!(e.is_subset_of(&d));
        assert_eq!(d.minus(&e).len(), 256 - edges.len());
        for &t in &edges {
            assert!(d.contains(t));
            assert!(!d.minus(&e).contains(t));
        }
        // A dense set ending exactly at a word edge has no phantom tail.
        let exact = Tidset::full(128);
        assert_eq!(exact.len(), 128);
        assert!(!exact.contains(128));
        assert_eq!(exact.iter().last(), Some(127));
    }

    #[test]
    fn intersect_into_reuses_buffers() {
        let a = dense(100_000, 2);
        let b = dense(100_000, 3);
        let mut scratch = Tidset::new();
        a.intersect_into(&b, &mut scratch);
        assert_eq!(scratch.len(), a.intersect_count(&b));
        // Reuse with different operands: contents fully replaced.
        let s1 = ts(&[2, 4, 100]);
        s1.intersect_into(&a, &mut scratch);
        assert_eq!(scratch.to_vec(), vec![2, 4, 100]);
        // Reuse for a sparse result after a dense one and vice versa.
        a.intersect_into(&b, &mut scratch);
        assert_eq!(scratch.len(), a.intersect_count(&b));
    }

    #[test]
    fn push_monotonic_builds_sorted() {
        let mut t = Tidset::new();
        t.push_monotonic(2);
        t.push_monotonic(7);
        assert_eq!(t.to_vec(), &[2, 7]);
        // Dense sets accept monotonic pushes too.
        let mut d = Tidset::full(128);
        d.push_monotonic(200);
        assert_eq!(d.len(), 129);
        assert!(d.contains(200));
        assert_eq!(d.iter().last(), Some(200));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn push_monotonic_rejects_regression() {
        let mut t = Tidset::new();
        t.push_monotonic(7);
        t.push_monotonic(2);
    }

    #[test]
    fn equality_and_hash_cross_representation() {
        use std::collections::hash_map::DefaultHasher;
        // Build the same logical set two ways: normalized (dense) and via
        // push_monotonic (left sparse regardless of density).
        let normalized = Tidset::full(256);
        let mut pushed = Tidset::new();
        for t in 0..256 {
            pushed.push_monotonic(t);
        }
        assert!(matches!(normalized.0, Repr::Dense { .. }));
        assert!(matches!(pushed.0, Repr::Sparse(_)));
        assert_eq!(normalized, pushed);
        let hash = |t: &Tidset| {
            let mut h = DefaultHasher::new();
            t.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&normalized), hash(&pushed));
        assert_ne!(normalized, Tidset::full(255));
    }

    #[test]
    fn display_formats() {
        assert_eq!(ts(&[2, 5]).to_string(), "{2,5}");
        assert_eq!(Tidset::new().to_string(), "{}");
    }

    #[test]
    fn serde_format_is_a_plain_id_sequence() {
        // Dense and sparse sets serialize identically to the historical
        // sorted-vector format, and round-trip.
        let sparse = ts(&[1, 5, 900_000]);
        assert_eq!(serde_json::to_string(&sparse).unwrap(), "[1,5,900000]");
        let dense_set = Tidset::full(70);
        let json = serde_json::to_string(&dense_set).unwrap();
        assert_eq!(
            json,
            format!(
                "[{}]",
                (0..70).map(|t| t.to_string()).collect::<Vec<_>>().join(",")
            )
        );
        for t in [&sparse, &dense_set, &Tidset::new(), &Tidset::full(8_192)] {
            let back: Tidset =
                serde_json::from_str(&serde_json::to_string(t).unwrap()).unwrap();
            assert_eq!(&back, t);
        }
        // Restored sets re-pick the density-appropriate representation.
        let back: Tidset =
            serde_json::from_str(&serde_json::to_string(&Tidset::full(8_192)).unwrap())
                .unwrap();
        assert!(matches!(back.0, Repr::Dense { .. }));
    }

    #[test]
    fn binary_codec_round_trips_both_representations() {
        let universe = 100_000u32;
        let cases = [
            Tidset::new(),
            ts(&[0]),
            ts(&[99_999]),
            ts(&[1, 5, 900]),
            Tidset::from_sorted((0..4096).step_by(64).collect()), // sparse
            Tidset::full(8_192),                                  // dense
            Tidset::from_sorted((0..50_000).step_by(2).collect()), // dense, big
            ts(&[0, 63, 64, 127, 128, 4095]),                     // word edges
        ];
        for t in &cases {
            let mut buf = Vec::new();
            t.encode_binary(&mut buf);
            let mut cur = Cursor::new(&buf);
            let back = Tidset::decode_binary(&mut cur, universe).unwrap();
            assert!(cur.is_empty(), "codec must consume exactly its bytes");
            assert_eq!(&back, t);
            assert_eq!(back.kind(), t.kind(), "representation must be restored");
        }
    }

    #[test]
    fn binary_codec_is_compact_for_runs_and_dense_sets() {
        // Consecutive tids: 1 byte per tid after the header.
        let run = Tidset::from_sorted((1000..1064).collect());
        let mut buf = Vec::new();
        run.encode_binary(&mut buf);
        assert!(buf.len() <= 64 + 8, "run encoding too large: {}", buf.len());
        // Dense sets: ~1 bit per possible tid.
        let dense_set = Tidset::full(64_000);
        let mut buf = Vec::new();
        dense_set.encode_binary(&mut buf);
        assert!(buf.len() <= 64_000 / 8 + 16, "dense encoding too large: {}", buf.len());
    }

    #[test]
    fn binary_codec_rejects_corruption() {
        let t = Tidset::from_sorted((0..4096).step_by(64).collect());
        let mut good = Vec::new();
        t.encode_binary(&mut good);
        // Unknown tag.
        let mut bad = good.clone();
        bad[0] = 9;
        assert!(Tidset::decode_binary(&mut Cursor::new(&bad), 100_000).is_err());
        // Truncation at every prefix must error, never panic.
        for cut in 0..good.len() {
            let mut cur = Cursor::new(&good[..cut]);
            assert!(Tidset::decode_binary(&mut cur, 100_000).is_err(), "cut {cut}");
        }
        // Tid past the declared universe.
        let mut cur = Cursor::new(&good);
        assert!(Tidset::decode_binary(&mut cur, 100).is_err());
        // Dense: population count mismatch after a bit flip.
        let d = Tidset::full(8_192);
        let mut dbuf = Vec::new();
        d.encode_binary(&mut dbuf);
        let flip = dbuf.len() - 1;
        dbuf[flip] ^= 1;
        assert!(Tidset::decode_binary(&mut Cursor::new(&dbuf), 100_000).is_err());
        // Dense: trailing zero words.
        let mut zbuf = Vec::new();
        zbuf.push(1u8); // dense tag
        codec::write_varint(&mut zbuf, 1); // one tid
        codec::write_varint(&mut zbuf, 2); // two words
        zbuf.extend_from_slice(&1u64.to_le_bytes());
        zbuf.extend_from_slice(&0u64.to_le_bytes());
        assert!(Tidset::decode_binary(&mut Cursor::new(&zbuf), 100_000).is_err());
    }

    #[test]
    fn gallop_finds_exact_probe_boundaries() {
        // Regression: a match sitting exactly at the galloping probe index
        // (a power of two) used to be excluded from the binary-search
        // range, silently undercounting intersections. Step 64 keeps the
        // large side sparse so the gallop path actually runs.
        let large = Tidset::from_sorted((0..512 * 64).step_by(64).collect());
        assert!(matches!(large.0, Repr::Sparse(_)));
        for probe in [0u32, 64, 128, 256, 512, 1024, 4096, 16384, 511 * 64] {
            let small = Tidset::from_sorted(vec![probe]);
            assert_eq!(small.intersect_count(&large), 1, "probe {probe}");
            assert!(small.is_subset_of(&large), "probe {probe}");
        }
    }

    /// Cross-check every operation against `BTreeSet` for one operand pair.
    fn check_against_reference(a: Vec<u32>, b: Vec<u32>) {
        let sa: BTreeSet<u32> = a.iter().copied().collect();
        let sb: BTreeSet<u32> = b.iter().copied().collect();
        let ta = Tidset::from_unsorted(a);
        let tb = Tidset::from_unsorted(b);
        let inter: Vec<u32> = sa.intersection(&sb).copied().collect();
        let uni: Vec<u32> = sa.union(&sb).copied().collect();
        let diff: Vec<u32> = sa.difference(&sb).copied().collect();
        assert_eq!(ta.intersect(&tb).to_vec(), inter);
        assert_eq!(tb.intersect(&ta).to_vec(), inter);
        assert_eq!(ta.intersect_count(&tb), inter.len());
        assert_eq!(tb.intersect_count(&ta), inter.len());
        assert_eq!(ta.union(&tb).to_vec(), uni);
        assert_eq!(tb.union(&ta).to_vec(), uni);
        assert_eq!(ta.minus(&tb).to_vec(), diff);
        assert_eq!(ta.is_subset_of(&tb), sa.is_subset(&sb));
        assert_eq!(tb.is_subset_of(&ta), sb.is_subset(&sa));
        let mut scratch = Tidset::new();
        ta.intersect_into(&tb, &mut scratch);
        assert_eq!(scratch.to_vec(), inter);
        assert_eq!(ta.iter().collect::<Vec<u32>>(), ta.to_vec());
    }

    #[test]
    fn representation_pair_matrix_matches_reference() {
        // Deterministic matrix crossing sparse×sparse, sparse×dense,
        // dense×dense, empty and full, with word-edge tids present.
        let variants: Vec<Vec<u32>> = vec![
            vec![],                                          // empty
            (0..256).collect(),                              // full range (dense)
            (0..4096).step_by(3).collect(),                  // dense
            (0..4096).step_by(64).collect(),                 // sparse
            vec![0, 63, 64, 127, 128, 4095],                 // word edges
            (100..164).collect(),                            // tiny full run
            (0..100_000).step_by(7).collect(),               // dense, big span
            vec![99_999],                                    // singleton at far edge
        ];
        for a in &variants {
            for b in &variants {
                check_against_reference(a.clone(), b.clone());
            }
        }
    }

    proptest::proptest! {
        #[test]
        fn skewed_ops_match_btreeset_reference(
            a in proptest::collection::vec(0u32..4096, 0..6),
            b in proptest::collection::vec(0u32..4096, 200..400),
        ) {
            // Heavily lopsided sizes force the galloping path (and, at
            // 200–400 ids over a 4096 span, often the dense side too).
            let sa: BTreeSet<u32> = a.iter().copied().collect();
            let sb: BTreeSet<u32> = b.iter().copied().collect();
            let ta = Tidset::from_unsorted(a);
            let tb = Tidset::from_unsorted(b);
            let inter: Vec<u32> = sa.intersection(&sb).copied().collect();
            let got = ta.intersect(&tb);
            proptest::prop_assert_eq!(got.to_vec(), inter.clone());
            proptest::prop_assert_eq!(ta.intersect_count(&tb), inter.len());
            proptest::prop_assert_eq!(tb.intersect_count(&ta), inter.len());
            proptest::prop_assert_eq!(ta.is_subset_of(&tb), sa.is_subset(&sb));
        }

        #[test]
        fn ops_match_btreeset_reference(a in proptest::collection::vec(0u32..512, 0..80),
                                        b in proptest::collection::vec(0u32..512, 0..80)) {
            let sa: BTreeSet<u32> = a.iter().copied().collect();
            let sb: BTreeSet<u32> = b.iter().copied().collect();
            let ta = Tidset::from_unsorted(a);
            let tb = Tidset::from_unsorted(b);
            let inter: Vec<u32> = sa.intersection(&sb).copied().collect();
            let uni: Vec<u32> = sa.union(&sb).copied().collect();
            let diff: Vec<u32> = sa.difference(&sb).copied().collect();
            let (got_i, got_u, got_d) = (ta.intersect(&tb), ta.union(&tb), ta.minus(&tb));
            proptest::prop_assert_eq!(got_i.to_vec(), inter.clone());
            proptest::prop_assert_eq!(ta.intersect_count(&tb), inter.len());
            proptest::prop_assert_eq!(got_u.to_vec(), uni);
            proptest::prop_assert_eq!(got_d.to_vec(), diff);
            proptest::prop_assert_eq!(ta.is_subset_of(&tb), sa.is_subset(&sb));
        }

        #[test]
        fn dense_pairs_match_btreeset_reference(
            a in proptest::collection::vec(0u32..1024, 300..600),
            b in proptest::collection::vec(0u32..1024, 300..600),
        ) {
            // 300–600 distinct-ish ids over a 1024 span: density well past
            // 1/16, so both operands take the bitmap path.
            let sa: BTreeSet<u32> = a.iter().copied().collect();
            let sb: BTreeSet<u32> = b.iter().copied().collect();
            let ta = Tidset::from_unsorted(a);
            let tb = Tidset::from_unsorted(b);
            let inter: Vec<u32> = sa.intersection(&sb).copied().collect();
            proptest::prop_assert_eq!(ta.intersect(&tb).to_vec(), inter.clone());
            proptest::prop_assert_eq!(ta.intersect_count(&tb), inter.len());
            proptest::prop_assert_eq!(
                ta.union(&tb).to_vec(),
                sa.union(&sb).copied().collect::<Vec<u32>>()
            );
            proptest::prop_assert_eq!(
                ta.minus(&tb).to_vec(),
                sa.difference(&sb).copied().collect::<Vec<u32>>()
            );
            proptest::prop_assert_eq!(ta.is_subset_of(&tb), sa.is_subset(&sb));
        }

        #[test]
        fn binary_codec_round_trip(a in proptest::collection::vec(0u32..100_000, 0..400)) {
            let t = Tidset::from_unsorted(a);
            let mut buf = Vec::new();
            t.encode_binary(&mut buf);
            let back = Tidset::decode_binary(&mut Cursor::new(&buf), 100_000).unwrap();
            proptest::prop_assert_eq!(&back, &t);
        }

        #[test]
        fn serde_round_trip(a in proptest::collection::vec(0u32..100_000, 0..400)) {
            let t = Tidset::from_unsorted(a);
            let json = serde_json::to_string(&t).unwrap();
            let back: Tidset = serde_json::from_str(&json).unwrap();
            proptest::prop_assert_eq!(&back, &t);
            // And the wire format equals the plain vector encoding.
            proptest::prop_assert_eq!(json, serde_json::to_string(&t.to_vec()).unwrap());
        }
    }
}
