//! Low-level binary codec primitives for the index snapshot format.
//!
//! The snapshot subsystem (`colarm::persist`) serializes tidsets, itemsets
//! and schema metadata into a versioned, checksummed binary layout. The
//! representation-independent building blocks live here so the data crate
//! can encode its own types ([`crate::Tidset`]) and test them in isolation:
//!
//! * **LEB128 varints** — unsigned little-endian base-128 integers; small
//!   values (deltas between sorted tids, domain-bounded value codes) take
//!   one byte.
//! * **CRC-32 (IEEE)** — the checksum guarding every snapshot section and
//!   the whole file, so truncation and bit-flips are caught at load time.
//! * **[`Cursor`]** — a bounds-checked slice reader that reports the byte
//!   offset of any malformed field instead of panicking.

use std::fmt;

/// A malformed binary payload: decoding failed at `offset` within the
/// buffer being decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset (within the decoded buffer) where decoding failed.
    pub offset: usize,
    /// What was malformed.
    pub message: String,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed binary data at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for CodecError {}

/// Append an unsigned LEB128 varint.
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// IEEE CRC-32 lookup table (reflected polynomial 0xEDB88320).
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// Sixteen derived tables for the slice-by-16 kernel: `CRC_TABLES[k][b]`
/// is the CRC contribution of byte `b` positioned `k` bytes before the
/// end of a 16-byte block. Built from the base table at compile time.
const fn crc32_tables16() -> [[u32; 256]; 16] {
    let base = crc32_table();
    let mut tables = [[0u32; 256]; 16];
    tables[0] = base;
    let mut t = 1;
    while t < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = base[(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
}

static CRC_TABLES16: [[u32; 256]; 16] = crc32_tables16();

/// Incremental IEEE CRC-32 state.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Fresh checksum state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes into the checksum. Uses a slice-by-16 kernel (sixteen
    /// independent table lookups per 16-byte block instead of sixteen
    /// dependent byte-at-a-time steps), which matters because the mmap
    /// snapshot path checksums whole mapped sections before the first
    /// answer — CRC throughput is on the cold-start critical path.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        let mut chunks = bytes.chunks_exact(16);
        for chunk in &mut chunks {
            let w0 = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
            let w1 = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
            let w2 = u32::from_le_bytes([chunk[8], chunk[9], chunk[10], chunk[11]]);
            let w3 = u32::from_le_bytes([chunk[12], chunk[13], chunk[14], chunk[15]]);
            c = CRC_TABLES16[15][(w0 & 0xFF) as usize]
                ^ CRC_TABLES16[14][((w0 >> 8) & 0xFF) as usize]
                ^ CRC_TABLES16[13][((w0 >> 16) & 0xFF) as usize]
                ^ CRC_TABLES16[12][(w0 >> 24) as usize]
                ^ CRC_TABLES16[11][(w1 & 0xFF) as usize]
                ^ CRC_TABLES16[10][((w1 >> 8) & 0xFF) as usize]
                ^ CRC_TABLES16[9][((w1 >> 16) & 0xFF) as usize]
                ^ CRC_TABLES16[8][(w1 >> 24) as usize]
                ^ CRC_TABLES16[7][(w2 & 0xFF) as usize]
                ^ CRC_TABLES16[6][((w2 >> 8) & 0xFF) as usize]
                ^ CRC_TABLES16[5][((w2 >> 16) & 0xFF) as usize]
                ^ CRC_TABLES16[4][(w2 >> 24) as usize]
                ^ CRC_TABLES16[3][(w3 & 0xFF) as usize]
                ^ CRC_TABLES16[2][((w3 >> 8) & 0xFF) as usize]
                ^ CRC_TABLES16[1][((w3 >> 16) & 0xFF) as usize]
                ^ CRC_TABLES16[0][(w3 >> 24) as usize];
        }
        for &b in chunks.remainder() {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The checksum of everything fed so far (the state is unaffected, so
    /// feeding may continue).
    pub fn value(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.value()
}

/// Multiply the GF(2) matrix `mat` by the bit-vector `vec` (each matrix
/// row is a 32-bit column of the operator).
fn gf2_matrix_times(mat: &[u32; 32], mut vec: u32) -> u32 {
    let mut sum = 0;
    let mut i = 0;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

fn gf2_matrix_square(square: &mut [u32; 32], mat: &[u32; 32]) {
    for n in 0..32 {
        square[n] = gf2_matrix_times(mat, mat[n]);
    }
}

/// Combine two CRC-32 values: given `crc1 = crc32(A)` and
/// `crc2 = crc32(B)`, returns `crc32(A ‖ B)` in O(log len2) — the zlib
/// `crc32_combine` construction (CRC is linear over GF(2), so appending
/// `len2` bytes is a matrix power applied to `crc1`). This is what lets
/// [`crc32_par`] checksum one buffer on several workers and still agree
/// bit-for-bit with the sequential [`crc32`].
pub fn crc32_combine(crc1: u32, crc2: u32, mut len2: u64) -> u32 {
    if len2 == 0 {
        return crc1;
    }
    let mut even = [0u32; 32];
    let mut odd = [0u32; 32];
    // The operator advancing a CRC by one zero *bit*: xor-shift by the
    // reflected polynomial.
    odd[0] = 0xEDB8_8320;
    let mut row = 1u32;
    for entry in odd.iter_mut().skip(1) {
        *entry = row;
        row <<= 1;
    }
    gf2_matrix_square(&mut even, &odd); // 2 bits
    gf2_matrix_square(&mut odd, &even); // 4 bits = one zero-nibble… ×2 → byte
    let mut crc1 = crc1;
    loop {
        gf2_matrix_square(&mut even, &odd);
        if len2 & 1 != 0 {
            crc1 = gf2_matrix_times(&even, crc1);
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
        gf2_matrix_square(&mut odd, &even);
        if len2 & 1 != 0 {
            crc1 = gf2_matrix_times(&odd, crc1);
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
    }
    crc1 ^ crc2
}

/// The split size for [`crc32_par`]. Fixed (not derived from the worker
/// count) so the combine tree — and any failure it surfaces — is
/// identical at every thread count.
const CRC_PAR_CHUNK: usize = 1 << 20;

/// [`crc32`] spread across the worker pool: the buffer is split into
/// fixed 1 MiB pieces checksummed in parallel and folded back together
/// with [`crc32_combine`]. Bit-identical to the sequential checksum at
/// every thread count. Falls back to one pass for small buffers, where
/// fork/join overhead would dominate; `threads` follows the
/// [`crate::par::resolve_threads`] convention (`0` = pool default).
pub fn crc32_par(bytes: &[u8], threads: usize) -> u32 {
    let threads = crate::par::resolve_threads(threads);
    if threads <= 1 || bytes.len() < 2 * CRC_PAR_CHUNK {
        return crc32(bytes);
    }
    let pieces: Vec<&[u8]> = bytes.chunks(CRC_PAR_CHUNK).collect();
    let crcs = crate::par::parallel_map(&pieces, threads, |_, piece| crc32(piece));
    let mut acc = crcs[0];
    for (piece, &crc) in pieces[1..].iter().zip(&crcs[1..]) {
        acc = crc32_combine(acc, crc, piece.len() as u64);
    }
    acc
}

/// Bounds-checked reader over a byte slice. Every read either succeeds or
/// returns a [`CodecError`] carrying the failing offset — decoding a
/// corrupt snapshot must never panic.
#[derive(Debug)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Current byte offset.
    #[inline]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn err(&self, message: impl Into<String>) -> CodecError {
        CodecError {
            offset: self.pos,
            message: message.into(),
        }
    }

    /// Take the next `n` bytes.
    #[inline]
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(self.err(format!(
                "need {n} bytes but only {} remain (truncated)",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Next byte.
    #[inline]
    pub fn read_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.read_bytes(1)?[0])
    }

    /// Next little-endian `u32`.
    #[inline]
    pub fn read_u32_le(&mut self) -> Result<u32, CodecError> {
        let b = self.read_bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Next little-endian `u64`.
    #[inline]
    pub fn read_u64_le(&mut self) -> Result<u64, CodecError> {
        let b = self.read_bytes(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Next unsigned LEB128 varint. Rejects encodings longer than 10 bytes
    /// and overlong final bytes (a `u64` holds at most 64 payload bits).
    #[inline]
    pub fn read_varint(&mut self) -> Result<u64, CodecError> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.read_u8()?;
            let payload = (byte & 0x7F) as u64;
            if shift == 63 && payload > 1 {
                return Err(self.err("varint overflows u64"));
            }
            v |= payload << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(self.err("varint longer than 10 bytes"))
    }

    /// Next length-prefixed UTF-8 string (varint byte length + bytes),
    /// with `max_len` guarding against corrupt length prefixes.
    pub fn read_string(&mut self, max_len: usize) -> Result<String, CodecError> {
        let len = self.read_varint()? as usize;
        if len > max_len {
            return Err(self.err(format!("string length {len} exceeds limit {max_len}")));
        }
        let bytes = self.read_bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| self.err("string is not valid UTF-8"))
    }
}

/// Append a length-prefixed UTF-8 string.
pub fn write_string(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips() {
        let samples = [
            0u64,
            1,
            127,
            128,
            129,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &samples {
            write_varint(&mut buf, v);
        }
        let mut cur = Cursor::new(&buf);
        for &v in &samples {
            assert_eq!(cur.read_varint().unwrap(), v);
        }
        assert!(cur.is_empty());
    }

    #[test]
    fn varint_rejects_overflow_and_truncation() {
        // 11 continuation bytes: longer than any valid u64 varint.
        let overlong = [0xFFu8; 11];
        assert!(Cursor::new(&overlong).read_varint().is_err());
        // 10 bytes whose final payload overflows 64 bits.
        let overflow = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        assert!(Cursor::new(&overflow).read_varint().is_err());
        // Truncated mid-varint.
        let truncated = [0x80u8];
        assert!(Cursor::new(&truncated).read_varint().is_err());
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Incremental == one-shot.
        let mut inc = Crc32::new();
        inc.update(b"1234");
        inc.update(b"56789");
        assert_eq!(inc.value(), 0xCBF4_3926);
    }

    #[test]
    fn cursor_reports_offsets_and_never_panics() {
        let buf = [1u8, 2, 3];
        let mut cur = Cursor::new(&buf);
        assert_eq!(cur.read_u8().unwrap(), 1);
        let err = cur.read_u32_le().unwrap_err();
        assert_eq!(err.offset, 1);
        assert!(err.message.contains("truncated"));
    }

    #[test]
    fn crc32_combine_splices_checksums() {
        // crc32(A ‖ B) == combine(crc32(A), crc32(B), |B|) at every split
        // point, including empty halves.
        let data: Vec<u8> = (0..4096u32).map(|i| i.wrapping_mul(2654435761) as u8).collect();
        let whole = crc32(&data);
        for split in [0, 1, 7, 8, 63, 64, 1000, 4095, 4096] {
            let (a, b) = data.split_at(split);
            assert_eq!(
                crc32_combine(crc32(a), crc32(b), b.len() as u64),
                whole,
                "split at {split}"
            );
        }
    }

    #[test]
    fn crc32_par_matches_sequential_at_every_thread_count() {
        // Cross the 2-chunk parallel threshold so the combine tree runs.
        let data: Vec<u8> = (0..3 * CRC_PAR_CHUNK + 17).map(|i| (i * 31 + 7) as u8).collect();
        let want = crc32(&data);
        for threads in [1, 2, 3, 8] {
            assert_eq!(crc32_par(&data, threads), want, "{threads} threads");
        }
        // Small buffers take the sequential fall-through.
        assert_eq!(crc32_par(&data[..100], 8), crc32(&data[..100]));
    }

    #[test]
    fn strings_round_trip_and_reject_bad_lengths() {
        let mut buf = Vec::new();
        write_string(&mut buf, "Location");
        write_string(&mut buf, "");
        let mut cur = Cursor::new(&buf);
        assert_eq!(cur.read_string(1 << 16).unwrap(), "Location");
        assert_eq!(cur.read_string(1 << 16).unwrap(), "");
        // A length prefix past the limit is rejected before allocation.
        let mut bomb = Vec::new();
        write_varint(&mut bomb, u64::MAX / 2);
        assert!(Cursor::new(&bomb).read_string(1 << 16).is_err());
        // Invalid UTF-8 is rejected.
        let bad = [2u8, 0xFF, 0xFE];
        assert!(Cursor::new(&bad).read_string(16).is_err());
    }
}
