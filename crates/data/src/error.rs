//! Typed errors for the data substrate.

use std::fmt;

/// Errors raised while building schemas and datasets or resolving subsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// An attribute name was used twice in one schema.
    DuplicateAttribute(String),
    /// An attribute name or id does not exist in the schema.
    UnknownAttribute(String),
    /// A value label does not exist in the named attribute's domain.
    UnknownValue { attribute: String, value: String },
    /// A record had the wrong number of fields for the schema.
    ArityMismatch { expected: usize, got: usize },
    /// A record carried a value code outside its attribute's domain.
    ValueOutOfDomain {
        attribute: String,
        code: u16,
        domain: usize,
    },
    /// A range specification selected no values for some attribute.
    EmptyRange(String),
    /// Discretization was asked for zero bins or got an empty column.
    InvalidDiscretization(String),
    /// A parse error in one of the textual dataset formats.
    Parse { line: usize, message: String },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute `{name}` in schema")
            }
            DataError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            DataError::UnknownValue { attribute, value } => {
                write!(f, "unknown value `{value}` for attribute `{attribute}`")
            }
            DataError::ArityMismatch { expected, got } => {
                write!(f, "record has {got} fields but the schema has {expected}")
            }
            DataError::ValueOutOfDomain {
                attribute,
                code,
                domain,
            } => write!(
                f,
                "value code {code} out of domain (size {domain}) for attribute `{attribute}`"
            ),
            DataError::EmptyRange(attr) => {
                write!(f, "range selection for attribute `{attr}` is empty")
            }
            DataError::InvalidDiscretization(msg) => write!(f, "invalid discretization: {msg}"),
            DataError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for DataError {}
