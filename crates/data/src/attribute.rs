//! Attributes, values and the dense global item encoding.
//!
//! Rule mining works over nominal attributes (paper §2.1): attribute
//! `Age` with discretized domain `{20-30, 30-40, …}` yields items
//! `A0 = (Age = 20-30)`, `A1 = (Age = 30-40)` and so on. COLARM encodes
//! every `(attribute, value)` pair as a dense global [`ItemId`] so itemsets
//! are plain sorted integer vectors and per-item tid-lists are a flat array.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of an attribute within a [`crate::Schema`] (a dimension of the
/// multidimensional space of paper Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttributeId(pub u16);

impl AttributeId {
    /// The attribute id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttributeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attr#{}", self.0)
    }
}

/// Index of a value within one attribute's domain.
pub type ValueId = u16;

/// Dense global id of an `(attribute, value)` item.
///
/// Ids are assigned contiguously attribute by attribute: attribute 0's
/// values get ids `0..d0`, attribute 1's values `d0..d0+d1`, etc. This makes
/// "which attribute does this item belong to" a binary search over schema
/// offsets and lets vertical indexes be flat `Vec`s keyed by item id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ItemId(pub u32);

impl ItemId {
    /// The item id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// A decoded item: one `(attribute, value)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Item {
    /// Attribute (dimension) the item constrains.
    pub attribute: AttributeId,
    /// Value code within that attribute's domain.
    pub value: ValueId,
}

/// A nominal attribute: a name plus an ordered domain of value labels.
///
/// For discretized quantitative attributes the labels are interval strings
/// such as `"20-30"`; the *order* of labels is the order of the intervals,
/// which is what makes bounding boxes over value codes meaningful.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    name: String,
    values: Vec<String>,
}

impl Attribute {
    /// Create an attribute with the given domain. The domain order is
    /// preserved; duplicate labels are rejected at the schema level.
    pub fn new(name: impl Into<String>, values: impl IntoIterator<Item = impl Into<String>>) -> Self {
        Attribute {
            name: name.into(),
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of values in the domain.
    pub fn domain_size(&self) -> usize {
        self.values.len()
    }

    /// Label of the value with code `v`, if in domain.
    pub fn value_label(&self, v: ValueId) -> Option<&str> {
        self.values.get(v as usize).map(String::as_str)
    }

    /// Code of the value with the given label, if in domain (linear scan —
    /// domains are small and this is not on any hot path).
    pub fn value_code(&self, label: &str) -> Option<ValueId> {
        self.values.iter().position(|v| v == label).map(|i| i as ValueId)
    }

    /// All value labels in domain order.
    pub fn values(&self) -> &[String] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_lookup_round_trips() {
        let a = Attribute::new("Age", ["20-30", "30-40", "40-50"]);
        assert_eq!(a.domain_size(), 3);
        assert_eq!(a.value_label(1), Some("30-40"));
        assert_eq!(a.value_code("40-50"), Some(2));
        assert_eq!(a.value_code("50-60"), None);
        assert_eq!(a.value_label(9), None);
    }

    #[test]
    fn ids_order_and_display() {
        assert!(ItemId(3) < ItemId(10));
        assert_eq!(ItemId(7).to_string(), "i7");
        assert_eq!(AttributeId(2).to_string(), "attr#2");
        assert_eq!(AttributeId(2).index(), 2);
    }
}
