//! Relational data model substrate for COLARM (EDBT 2014).
//!
//! COLARM mines *localized* association rules over a relational dataset:
//! every record has exactly one (possibly discretized) value per attribute,
//! an *item* is an `(attribute, value)` pair, and an *itemset* is a set of
//! items with at most one item per attribute (paper §2.1).
//!
//! This crate provides everything below the mining layer:
//!
//! * [`Schema`] / [`Attribute`] — nominal attribute catalogs with a dense
//!   global [`ItemId`] encoding of attribute–value pairs.
//! * [`Dataset`] — row store of records plus a [`VerticalIndex`] of per-item
//!   tid-lists (the vertical format CHARM mines over).
//! * [`Tidset`] — chunked transaction-id sets: the u32 tid universe is
//!   partitioned into 64k-aligned chunks, each stored as a sorted-u16
//!   array, packed bitmap, or run list by local density, with kernels
//!   specialized per container pairing; the unit of all support counting
//!   in COLARM.
//! * [`par`] — deterministic ordered fork-join used by the parallel
//!   operator loops and the index build, with the session thread knob.
//! * [`Itemset`] — sorted item-id sets with subset/union algebra and the
//!   multidimensional bounding-box semantics of paper Figure 1.
//! * [`RangeSpec`] / [`FocalSubset`] — the query-time subset-selection
//!   algebra (`Arange` of paper §2.2), including the contained / partially
//!   overlapped / disjoint classification of paper §3.4.
//! * [`discretize`] — equal-width / equal-frequency binning for quantitative
//!   attributes (paper §2.1 footnote 3).
//! * [`synth`] — the Table 1 salary example and seeded generators standing
//!   in for the UCI chess / mushroom / PUMSB benchmarks (see DESIGN.md for
//!   the substitution rationale).
//! * [`io`] — a small TSV relational format and FIMI `.dat` export.
//! * [`codec`] — varint / CRC-32 / bounds-checked-cursor primitives
//!   backing the binary index-snapshot format (`colarm::persist`),
//!   including the delta-varint / raw-bitmap [`Tidset`] encoding.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod attribute;
pub mod codec;
pub mod dataset;
pub mod discretize;
pub mod error;
pub mod io;
pub mod itemset;
pub mod metrics;
pub mod par;
pub mod schema;
pub mod subset;
pub mod synth;
pub mod tidset;
pub mod view;

pub use attribute::{Attribute, AttributeId, Item, ItemId, ValueId};
pub use dataset::{Dataset, DatasetBuilder, VerticalIndex};
pub use error::DataError;
pub use itemset::Itemset;
pub use schema::{Schema, SchemaBuilder};
pub use metrics::{Meter, OpMetrics};
pub use subset::{FocalSubset, Overlap, RangeSpec};
pub use tidset::{ChunkRef, ChunkView, ContainerKind, Tidset, TidsetKind};
pub use view::{SliceView, ViewOwner};
