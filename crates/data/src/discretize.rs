//! Discretization of quantitative attributes (paper §2.1 footnote 3).
//!
//! COLARM treats discretization as an orthogonal offline step: quantitative
//! columns are binned into disjoint intervals once, before index
//! construction, and queries then align with the resulting cells. We provide
//! the two classic schemes from the quantitative-ARM literature
//! (Srikant–Agrawal \[20\]): equal-width and equal-frequency binning.

use crate::attribute::{Attribute, ValueId};
use crate::error::DataError;

/// Binning scheme for a quantitative column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Binning {
    /// Bins of equal numeric width across `[min, max]`.
    EqualWidth,
    /// Bins holding (approximately) equal record counts.
    EqualFrequency,
}

/// Result of discretizing one column: the derived nominal attribute plus
/// each record's bin code.
#[derive(Debug, Clone)]
pub struct Discretized {
    /// Nominal attribute whose values are interval labels like `"20-30"`.
    pub attribute: Attribute,
    /// Bin code per input row.
    pub codes: Vec<ValueId>,
    /// The bin edges: bin `i` covers `[edges[i], edges[i+1])` (last bin is
    /// closed on the right).
    pub edges: Vec<f64>,
}

/// Discretize a numeric column into `bins` intervals.
///
/// # Errors
/// Rejects `bins == 0`, empty columns, and non-finite values.
pub fn discretize(
    name: &str,
    column: &[f64],
    bins: usize,
    scheme: Binning,
) -> Result<Discretized, DataError> {
    if bins == 0 {
        return Err(DataError::InvalidDiscretization("zero bins".into()));
    }
    if column.is_empty() {
        return Err(DataError::InvalidDiscretization(format!(
            "empty column `{name}`"
        )));
    }
    if column.iter().any(|v| !v.is_finite()) {
        return Err(DataError::InvalidDiscretization(format!(
            "non-finite value in column `{name}`"
        )));
    }
    if bins > u16::MAX as usize {
        return Err(DataError::InvalidDiscretization(format!(
            "{bins} bins exceed the value-code space"
        )));
    }
    let edges = match scheme {
        Binning::EqualWidth => equal_width_edges(column, bins),
        Binning::EqualFrequency => equal_frequency_edges(column, bins),
    };
    let codes = column.iter().map(|&v| bin_of(&edges, v)).collect();
    let labels: Vec<String> = edges
        .windows(2)
        .map(|w| format!("{:.4}-{:.4}", w[0], w[1]))
        .collect();
    Ok(Discretized {
        attribute: Attribute::new(name, labels),
        codes,
        edges,
    })
}

fn equal_width_edges(column: &[f64], bins: usize) -> Vec<f64> {
    let min = column.iter().copied().fold(f64::INFINITY, f64::min);
    let max = column.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let width = if max > min { (max - min) / bins as f64 } else { 1.0 };
    (0..=bins).map(|i| min + width * i as f64).collect()
}

fn equal_frequency_edges(column: &[f64], bins: usize) -> Vec<f64> {
    let mut sorted: Vec<f64> = column.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len();
    let mut edges = Vec::with_capacity(bins + 1);
    edges.push(sorted[0]);
    for i in 1..bins {
        let idx = (i * n / bins).min(n - 1);
        let e = sorted[idx];
        // Keep edges strictly increasing even with heavy ties.
        if e > *edges.last().expect("nonempty") {
            edges.push(e);
        }
    }
    let last = sorted[n - 1];
    if last > *edges.last().expect("nonempty") {
        edges.push(last);
    } else {
        edges.push(*edges.last().expect("nonempty") + 1.0);
    }
    edges
}

fn bin_of(edges: &[f64], v: f64) -> ValueId {
    let nbins = edges.len() - 1;
    match edges.binary_search_by(|e| e.partial_cmp(&v).expect("finite")) {
        Ok(i) => (i.min(nbins - 1)) as ValueId,
        Err(i) => (i.saturating_sub(1).min(nbins - 1)) as ValueId,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_width_bins_ages() {
        let ages = [22.0, 25.0, 31.0, 38.0, 45.0, 49.9];
        let d = discretize("Age", &ages, 3, Binning::EqualWidth).unwrap();
        // Edges 22, ~31.3, ~40.6, 49.9
        assert_eq!(d.attribute.domain_size(), 3);
        assert_eq!(d.codes, vec![0, 0, 0, 1, 2, 2]);
    }

    #[test]
    fn equal_frequency_balances_counts() {
        let col: Vec<f64> = (0..90).map(|i| i as f64).collect();
        let d = discretize("X", &col, 3, Binning::EqualFrequency).unwrap();
        let mut counts = [0usize; 3];
        for &c in &d.codes {
            counts[c as usize] += 1;
        }
        assert_eq!(counts, [30, 30, 30]);
    }

    #[test]
    fn constant_column_yields_single_usable_bin() {
        let col = [5.0; 10];
        let d = discretize("C", &col, 4, Binning::EqualWidth).unwrap();
        assert!(d.codes.iter().all(|&c| (c as usize) < d.attribute.domain_size()));
        let df = discretize("C", &col, 4, Binning::EqualFrequency).unwrap();
        assert!(df.codes.iter().all(|&c| (c as usize) < df.attribute.domain_size()));
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(discretize("X", &[1.0], 0, Binning::EqualWidth).is_err());
        assert!(discretize("X", &[], 2, Binning::EqualWidth).is_err());
        assert!(discretize("X", &[f64::NAN], 2, Binning::EqualWidth).is_err());
    }

    #[test]
    fn max_value_lands_in_last_bin() {
        let col = [0.0, 10.0];
        let d = discretize("X", &col, 2, Binning::EqualWidth).unwrap();
        assert_eq!(d.codes[1] as usize, d.attribute.domain_size() - 1);
    }

    proptest::proptest! {
        #[test]
        fn every_value_gets_a_valid_bin(col in proptest::collection::vec(-1e6f64..1e6, 1..200),
                                        bins in 1usize..12) {
            for scheme in [Binning::EqualWidth, Binning::EqualFrequency] {
                let d = discretize("X", &col, bins, scheme).unwrap();
                proptest::prop_assert_eq!(d.codes.len(), col.len());
                for &c in &d.codes {
                    proptest::prop_assert!((c as usize) < d.attribute.domain_size());
                }
                proptest::prop_assert!(d.edges.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }
}
