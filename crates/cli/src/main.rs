//! `colarm` — command-line interface to the COLARM system.
//!
//! ```text
//! colarm demo
//!     The paper's Table 1 salary walkthrough.
//!
//! colarm index --data D.tsv --primary 0.1 [--out index.snap] [--no-stats]
//!     Offline phase: build (and optionally persist) a MIP-index over a
//!     TSV dataset (header of attribute names, one record per line).
//!     Snapshots are written in the checksummed binary format (atomic
//!     temp-file + rename); `--index` also accepts legacy JSON snapshots.
//!     `--no-stats` skips the statistics catalog, so the optimizer prices
//!     plans from global averages only (A/B baseline for the catalog).
//!
//! colarm query (--index index.snap | --data D.tsv --primary P) "REPORT …"
//!     Run one localized mining query (the paper's query language).
//!     Prefix the query with `EXPLAIN ANALYZE` to execute it with metrics
//!     on and print the per-operator predicted-vs-actual cost report
//!     (`--json` emits it machine-readable).
//!
//! colarm repl (--index index.snap | --data D.tsv --primary P)
//!     Interactive session: enter queries line by line; :help for the
//!     meta-commands (:plans, :explain, :advise, :stats, :save, :load,
//!     :quit).
//!
//! colarm serve (--index [NAME=]I.snap … | --data D.tsv --primary P) [--addr H:P]
//!     Long-running multi-tenant query daemon speaking HTTP/1.1 + JSON
//!     over a bounded acceptor + `--workers` I/O worker pool. Repeating
//!     `--index NAME=PATH` hosts several named snapshots, each routable
//!     as `/indexes/{name}/…` (the bare routes alias the first/default
//!     index). Tenants create drill-down sessions (`POST /sessions`)
//!     whose focal-subset and column caches persist across queries;
//!     sessions idle past `--idle-ttl-secs` are evicted, and the server
//!     admits at most `--concurrency` queries at once (excess gets 429,
//!     not a queue). SIGHUP reloads every index from its source path
//!     into a new generation (live sessions keep their snapshot);
//!     SIGTERM/SIGINT drain in-flight requests and exit cleanly.
//!
//! colarm advise (--index index.snap | --data D.tsv --primary P)
//!     Mine suggested query parameters from the data (§7 future work).
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

mod repl;

use colarm::{Colarm, ColarmServer, MipIndexConfig, QuerySession, ServerConfig, TransportConfig};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "demo" => demo(),
        "index" => cmd_index(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "repl" => cmd_repl(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "advise" => cmd_advise(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: colarm <demo|index|query|repl|serve|advise> [options]
  demo                                   the paper's salary walkthrough
  index  --data D.tsv --primary P [--out index.snap] [--no-stats]
         --out writes the checksummed binary snapshot format (atomic);
         --no-stats skips the statistics catalog (optimizer falls back
         to global averages — the A/B baseline)
  query  (--index I.snap | --data D.tsv --primary P) [--json] \"REPORT ...\"
         prefix the query with EXPLAIN ANALYZE for per-operator
         predicted-vs-actual cost tracing (--json for machine-readable)
  repl   (--index I.snap | --data D.tsv --primary P)
  serve  (--index [NAME=]I.snap … | --data D.tsv --primary P) [--addr H:P]
         multi-tenant HTTP/JSON query daemon (default 127.0.0.1:7878);
         repeat --index NAME=PATH to host several named snapshots
         (routes: /indexes/{name}/query, /indexes/{name}/sessions/…);
         SIGHUP reloads all indexes in place, SIGTERM drains and exits
         sessions: --max-sessions N (64)   --idle-ttl-secs N (900)
                   --concurrency N (8)     --timeout-cap-ms N (none)
         sockets:  --workers N (4)         --idle-conn-secs N (120)
                   --read-timeout-ms N (10000)
                   --write-timeout-ms N (10000)
  advise (--index I.snap | --data D.tsv --primary P)
  --index also accepts legacy JSON snapshots (auto-detected by magic)
  common: --validate M    checksum mode for mapped (v4) snapshots:
                          `lazy` (default) maps the file and serves the
                          first query in milliseconds, deferring bulk
                          checksums to that first query; `eager` verifies
                          every checksum before serving anything
          --threads N     worker threads for build + query execution
                          (default: COLARM_THREADS env, else all cores;
                           1 = sequential; answers are identical either way)
          --timeout-ms N  per-query deadline; a query past it fails with
                          a `canceled in <OPERATOR>` error (0 cancels
                          immediately). In the repl, adjustable via
                          :timeout <ms>|off";

/// Parsed `--flag value` options plus positional arguments.
struct Options {
    data: Option<String>,
    /// `--index` occurrences, each `PATH` or `NAME=PATH` (`serve` hosts
    /// them all; the other commands use the first).
    indexes: Vec<String>,
    out: Option<String>,
    primary: f64,
    no_stats: bool,
    json: bool,
    timeout_ms: Option<u64>,
    addr: String,
    max_sessions: Option<usize>,
    idle_ttl_secs: Option<u64>,
    concurrency: Option<usize>,
    timeout_cap_ms: Option<u64>,
    workers: Option<usize>,
    idle_conn_secs: Option<u64>,
    read_timeout_ms: Option<u64>,
    write_timeout_ms: Option<u64>,
    validate: colarm::ValidationMode,
    positional: Vec<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        data: None,
        indexes: Vec::new(),
        out: None,
        primary: 0.1,
        no_stats: false,
        json: false,
        timeout_ms: None,
        addr: "127.0.0.1:7878".to_string(),
        max_sessions: None,
        idle_ttl_secs: None,
        concurrency: None,
        timeout_cap_ms: None,
        workers: None,
        idle_conn_secs: None,
        read_timeout_ms: None,
        write_timeout_ms: None,
        validate: colarm::ValidationMode::Lazy,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--data" => opts.data = Some(take(&mut it, "--data")?),
            "--index" => opts.indexes.push(take(&mut it, "--index")?),
            "--out" => opts.out = Some(take(&mut it, "--out")?),
            "--no-stats" => opts.no_stats = true,
            "--json" => opts.json = true,
            "--timeout-ms" => {
                let ms: u64 = take(&mut it, "--timeout-ms")?
                    .parse()
                    .map_err(|_| "--timeout-ms expects a non-negative integer".to_string())?;
                opts.timeout_ms = Some(ms);
            }
            "--addr" => opts.addr = take(&mut it, "--addr")?,
            "--max-sessions" => {
                opts.max_sessions = Some(parse_flag(&mut it, "--max-sessions")?);
            }
            "--idle-ttl-secs" => {
                opts.idle_ttl_secs = Some(parse_flag(&mut it, "--idle-ttl-secs")?);
            }
            "--concurrency" => {
                opts.concurrency = Some(parse_flag(&mut it, "--concurrency")?);
            }
            "--timeout-cap-ms" => {
                opts.timeout_cap_ms = Some(parse_flag(&mut it, "--timeout-cap-ms")?);
            }
            "--workers" => {
                opts.workers = Some(parse_flag(&mut it, "--workers")?);
            }
            "--idle-conn-secs" => {
                opts.idle_conn_secs = Some(parse_flag(&mut it, "--idle-conn-secs")?);
            }
            "--read-timeout-ms" => {
                opts.read_timeout_ms = Some(parse_flag(&mut it, "--read-timeout-ms")?);
            }
            "--write-timeout-ms" => {
                opts.write_timeout_ms = Some(parse_flag(&mut it, "--write-timeout-ms")?);
            }
            "--validate" => {
                opts.validate = match take(&mut it, "--validate")?.as_str() {
                    "eager" => colarm::ValidationMode::Eager,
                    "lazy" => colarm::ValidationMode::Lazy,
                    other => {
                        return Err(format!(
                            "--validate expects `eager` or `lazy`, got `{other}`"
                        ))
                    }
                };
            }
            "--primary" => {
                opts.primary = take(&mut it, "--primary")?
                    .parse()
                    .map_err(|_| "--primary expects a number in (0, 1]".to_string())?;
            }
            "--threads" => {
                let n: usize = take(&mut it, "--threads")?
                    .parse()
                    .map_err(|_| "--threads expects a positive integer".to_string())?;
                if n == 0 {
                    return Err("--threads expects a positive integer".to_string());
                }
                colarm_data::par::set_max_threads(n);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            positional => opts.positional.push(positional.to_string()),
        }
    }
    Ok(opts)
}

fn take(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("{flag} expects a value"))
}

fn parse_flag<T: std::str::FromStr>(
    it: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<T, String> {
    take(it, flag)?
        .parse()
        .map_err(|_| format!("{flag} expects a non-negative integer"))
}

/// Load a system from either a snapshot (binary or legacy JSON,
/// auto-detected) or a TSV dataset.
fn load_system(opts: &Options) -> Result<Colarm, String> {
    if let Some(spec) = opts.indexes.first() {
        let (_, path) = split_index_spec(spec);
        return Colarm::load_index_snapshot_with(path, opts.validate)
            .map_err(|e| format!("restoring {path}: {e}"));
    }
    let Some(path) = &opts.data else {
        return Err("provide --index FILE or --data FILE".to_string());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let dataset = colarm_data::io::from_tsv(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    eprintln!(
        "[indexed {} records × {} attributes at primary support {:.1}%]",
        dataset.num_records(),
        dataset.schema().num_attributes(),
        opts.primary * 100.0
    );
    Colarm::build(
        dataset,
        MipIndexConfig {
            primary_support: opts.primary,
            collect_stats: !opts.no_stats,
            ..Default::default()
        },
    )
    .map_err(|e| e.to_string())
}

fn demo() -> Result<(), String> {
    let colarm = Colarm::build(
        colarm_data::synth::salary(),
        MipIndexConfig {
            primary_support: 2.0 / 11.0,
            ..Default::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let schema = colarm.index().dataset().schema().clone();
    println!("The paper's Table 1 salary dataset ({} records).", 11);
    let text = "REPORT LOCALIZED ASSOCIATION RULES FROM Dataset salary \
                WHERE RANGE Location = (Seattle), Gender = (F) \
                HAVING minsupport = 75% AND minconfidence = 90%;";
    println!("\n{text}\n");
    let out = colarm.run_text(text).map_err(|e| e.to_string())?;
    println!(
        "plan {} over {} records → {} rule(s):",
        out.plan.name(),
        out.subset_size,
        out.rules.len()
    );
    for rule in &out.rules {
        println!("  {}", rule.display(&schema));
    }
    println!("\nThe global trend (Age=20-30 → Salary=90K-120K, 45%/83%) does not\nhold in this subset — Simpson's paradox, mined online.");
    Ok(())
}

fn cmd_index(args: &[String]) -> Result<(), String> {
    let opts = parse_options(args)?;
    if opts.data.is_none() {
        return Err("index requires --data FILE".to_string());
    }
    let colarm = load_system(&opts)?;
    println!(
        "MIP-index: {} closed frequent itemsets, R-tree height {}, primary count {}, \
         statistics catalog {}",
        colarm.index().num_mips(),
        colarm.index().rtree().height(),
        colarm.index().primary_count(),
        if colarm.index().catalog().is_some() {
            "present"
        } else {
            "absent (global-average costing)"
        }
    );
    if let Some(out) = &opts.out {
        let bytes = colarm
            .save_index_snapshot(out)
            .map_err(|e| format!("writing {out}: {e}"))?;
        println!("snapshot written to {out} ({bytes} bytes, binary format v{})",
            colarm::persist::FORMAT_VERSION);
    }
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let opts = parse_options(args)?;
    let Some(text) = opts.positional.first() else {
        return Err("query requires a \"REPORT LOCALIZED ASSOCIATION RULES …\" string".to_string());
    };
    let colarm = load_system(&opts)?.into_shared();
    let schema = colarm.index().dataset().schema().clone();
    // One-shot queries run through a session so the --timeout-ms deadline
    // applies uniformly; a timed-out query surfaces the engine's
    // `canceled in <OPERATOR>` error on stderr.
    let session = QuerySession::new(colarm);
    session.set_timeout(opts.timeout_ms.map(Duration::from_millis));
    if let Some(query_text) = repl::strip_analyze_prefix(text) {
        let query =
            colarm::parse_query(query_text, &schema).map_err(|e| e.to_string())?;
        let analyzed = session.explain_analyze(&query).map_err(|e| e.to_string())?;
        if opts.json {
            println!("{}", analyzed.report.to_json());
        } else {
            println!("{}", analyzed.report);
        }
        return Ok(());
    }
    let query = colarm::parse_query(text, &schema).map_err(|e| e.to_string())?;
    let request = colarm::QueryRequest::query(&query).with_trace(true);
    let out = session.run(&request).map_err(|e| e.to_string())?;
    if opts.json {
        // The same QueryOutcome JSON the server returns, so scripts can
        // diff wire answers against in-process execution byte for byte.
        println!(
            "{}",
            serde_json::to_string_pretty(&out).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    println!(
        "plan {} over {} records in {:?} → {} rule(s)",
        out.plan.name(),
        out.subset_size,
        out.trace.as_ref().map(|t| t.total).unwrap_or_default(),
        out.rules.len()
    );
    for rule in &out.rules {
        println!("  {}", rule.display(&schema));
    }
    Ok(())
}

fn cmd_repl(args: &[String]) -> Result<(), String> {
    let opts = parse_options(args)?;
    let colarm = load_system(&opts)?;
    repl::run(colarm.into_shared(), opts.timeout_ms.map(Duration::from_millis))
}

/// Split an `--index` argument into `(name, path)`. `NAME=PATH` names
/// the index; a bare `PATH` gets the default name for the first entry.
/// A `=` whose left side contains a path separator is part of the path.
fn split_index_spec(spec: &str) -> (Option<&str>, &str) {
    match spec.split_once('=') {
        Some((name, path)) if !name.is_empty() && !name.contains('/') => (Some(name), path),
        _ => (None, spec),
    }
}

/// Where one served index came from, so SIGHUP can reload it.
enum IndexSource {
    Snapshot(String),
    Tsv { path: String, primary: f64 },
}

impl IndexSource {
    fn load(&self, validate: colarm::ValidationMode) -> Result<Colarm, String> {
        match self {
            IndexSource::Snapshot(path) => {
                Colarm::load_index_snapshot_with(path, validate)
                    .map_err(|e| format!("restoring {path}: {e}"))
            }
            IndexSource::Tsv { path, primary } => {
                let text =
                    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
                let dataset = colarm_data::io::from_tsv(&text)
                    .map_err(|e| format!("parsing {path}: {e}"))?;
                Colarm::build(
                    dataset,
                    MipIndexConfig {
                        primary_support: *primary,
                        ..Default::default()
                    },
                )
                .map_err(|e| e.to_string())
            }
        }
    }
}

/// Signal-to-flag bridge: handlers only flip atomics (async-signal-safe);
/// the serve loop polls them. On non-unix targets the flags exist but
/// nothing sets them — `colarm serve` runs until killed.
mod sig {
    use std::sync::atomic::AtomicBool;

    pub static RELOAD: AtomicBool = AtomicBool::new(false);
    pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    #[cfg(unix)]
    pub fn install() {
        use std::sync::atomic::Ordering;
        const SIGHUP: i32 = 1;
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        extern "C" fn on_hup(_: i32) {
            RELOAD.store(true, Ordering::SeqCst);
        }
        extern "C" fn on_term(_: i32) {
            SHUTDOWN.store(true, Ordering::SeqCst);
        }
        unsafe extern "C" {
            // C library signal(2), linked through std; handlers stay
            // installed (glibc gives BSD semantics).
            fn signal(signum: i32, handler: usize) -> usize;
        }
        let hup = on_hup as extern "C" fn(i32) as *const () as usize;
        let term = on_term as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGHUP, hup);
            signal(SIGINT, term);
            signal(SIGTERM, term);
        }
    }

    #[cfg(not(unix))]
    pub fn install() {}
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use std::sync::atomic::Ordering;

    let opts = parse_options(args)?;
    let mut config = ServerConfig::default();
    if let Some(n) = opts.max_sessions {
        if n == 0 {
            return Err("--max-sessions expects a positive integer".to_string());
        }
        config.max_sessions = n;
    }
    if let Some(secs) = opts.idle_ttl_secs {
        config.idle_ttl = Duration::from_secs(secs);
    }
    if let Some(n) = opts.concurrency {
        if n == 0 {
            return Err("--concurrency expects a positive integer".to_string());
        }
        config.max_concurrency = n;
    }
    if let Some(ms) = opts.timeout_cap_ms {
        config.timeout_cap = Some(Duration::from_millis(ms));
    }
    let mut transport = TransportConfig::default();
    if let Some(n) = opts.workers {
        if n == 0 {
            return Err("--workers expects a positive integer".to_string());
        }
        transport.workers = n;
    }
    if let Some(secs) = opts.idle_conn_secs {
        transport.idle_conn_ttl = Duration::from_secs(secs.max(1));
    }
    if let Some(ms) = opts.read_timeout_ms {
        transport.read_timeout = Duration::from_millis(ms.max(1));
    }
    if let Some(ms) = opts.write_timeout_ms {
        transport.write_timeout = Duration::from_millis(ms.max(1));
    }

    // Resolve the index sources: every `--index [NAME=]PATH`, or the
    // `--data` TSV as the default index. Sources are remembered so
    // SIGHUP can reload each one into a new generation.
    let mut sources: Vec<(String, IndexSource)> = Vec::new();
    for (i, spec) in opts.indexes.iter().enumerate() {
        let (name, path) = split_index_spec(spec);
        let name = match name {
            Some(name) => name.to_string(),
            None if i == 0 => colarm::DEFAULT_INDEX.to_string(),
            None => {
                return Err(format!(
                    "--index {path}: additional indexes need a name (--index NAME=PATH)"
                ))
            }
        };
        sources.push((name, IndexSource::Snapshot(path.to_string())));
    }
    if sources.is_empty() {
        let Some(path) = &opts.data else {
            return Err("provide --index [NAME=]FILE (repeatable) or --data FILE".to_string());
        };
        sources.push((
            colarm::DEFAULT_INDEX.to_string(),
            IndexSource::Tsv {
                path: path.clone(),
                primary: opts.primary,
            },
        ));
    }

    let mut named = Vec::with_capacity(sources.len());
    for (name, source) in &sources {
        named.push((name.clone(), source.load(opts.validate)?.into_shared()));
    }
    let server = ColarmServer::with_named_indexes(
        named,
        config,
        std::sync::Arc::new(colarm::SystemClock::default()),
    )?;

    sig::install();
    let listener = std::net::TcpListener::bind(&opts.addr)
        .map_err(|e| format!("binding {}: {e}", opts.addr))?;
    let handle = server
        .serve_listener_with(listener, transport)
        .map_err(|e| format!("serving {}: {e}", opts.addr))?;
    eprintln!(
        "colarm serving on http://{} — indexes [{}], {} workers; \
         POST /query, POST /sessions, GET /indexes, GET /health \
         (SIGHUP reloads, SIGTERM drains)",
        handle.addr(),
        server.index_names().join(", "),
        opts.workers.unwrap_or(TransportConfig::default().workers),
    );

    loop {
        std::thread::sleep(Duration::from_millis(200));
        if sig::SHUTDOWN.load(Ordering::SeqCst) {
            eprintln!("colarm: draining connections and shutting down");
            handle.shutdown();
            return Ok(());
        }
        if sig::RELOAD.swap(false, Ordering::SeqCst) {
            for (name, source) in &sources {
                match source.load(opts.validate) {
                    Ok(mut colarm) => {
                        // Carry the retiring generation's fitted cost
                        // constants forward, so a reload does not lose
                        // what feedback calibration learned.
                        if let Some(old) = server.index(name) {
                            colarm.adopt_calibration(&old);
                        }
                        let generation = server.reload_index(name, colarm.into_shared());
                        eprintln!(
                            "colarm: reloaded index `{name}` (generation {})",
                            generation.unwrap_or(0)
                        );
                    }
                    // A failed reload keeps the old generation serving.
                    Err(e) => eprintln!("colarm: reload of `{name}` failed, keeping current: {e}"),
                }
            }
        }
    }
}

fn cmd_advise(args: &[String]) -> Result<(), String> {
    let opts = parse_options(args)?;
    let colarm = load_system(&opts)?;
    let advice = colarm::advisor::advise(colarm.index(), &colarm::advisor::AdvisorConfig::default())
        .map_err(|e| e.to_string())?;
    println!(
        "suggested thresholds: minsupport {:.1}%, minconfidence {:.1}%",
        advice.minsupp * 100.0,
        advice.minconf * 100.0
    );
    if advice.ranges.is_empty() {
        println!("no paradox-rich single-value subsets at these thresholds");
    } else {
        println!("paradox-rich subsets to explore (fresh local itemsets):");
        for r in &advice.ranges {
            println!(
                "  {:<24} {:>7} records  {:>6} fresh",
                r.label, r.subset_size, r.fresh_local_cfis
            );
        }
    }
    Ok(())
}
