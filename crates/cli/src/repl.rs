//! Interactive localized-mining session over stdin/stdout.
//!
//! Queries in the paper's language run through a caching [`QuerySession`]
//! (threshold refinements over the same region reuse the resolved subset).
//! Meta-commands:
//!
//! ```text
//! :help              this text
//! :schema            attributes and domains
//! :plans             Table 4 (the six plans)
//! :explain <query>   all six cost estimates + the chosen plan
//! :analyze <query>   EXPLAIN ANALYZE: execute + predicted-vs-actual
//! :advise            suggested thresholds and paradox-rich subsets
//! :stats             session cache statistics
//! :timeout <ms>|off  set/clear the per-query deadline (bare: show it)
//! :cancel            arm the cancel token: the next query is canceled
//! :save <path>       write the index to a binary snapshot (atomic)
//! :load <path>       replace the session's index from a snapshot
//! :quit              leave
//! ```
//!
//! A query prefixed with `EXPLAIN ANALYZE` is shorthand for `:analyze`.
//! A timed-out or canceled query reports the operator it stopped in and
//! leaves the session fully usable (nothing partial is cached).

use colarm::{Colarm, PlanKind, QuerySession};
use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Duration;

/// Run the REPL until EOF or `:quit`, with an optional initial
/// per-query deadline (the CLI's `--timeout-ms`).
pub fn run(mut colarm: Arc<Colarm>, timeout: Option<Duration>) -> Result<(), String> {
    let mut schema = colarm.index().dataset().schema().clone();
    let mut session = QuerySession::new(colarm.clone());
    session.set_timeout(timeout);
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    println!(
        "COLARM repl — {} records, {} MIPs. Enter REPORT queries; :help for commands.",
        colarm.index().dataset().num_records(),
        colarm.index().num_mips()
    );
    loop {
        print!("colarm> ");
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => return Err(format!("stdin: {e}")),
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            ":quit" | ":q" | ":exit" => break,
            ":help" => println!("{}", HELP),
            ":schema" => {
                for attr in schema.attributes() {
                    println!(
                        "  {} ({} values): {}",
                        attr.name(),
                        attr.domain_size(),
                        attr.values().join(", ")
                    );
                }
            }
            ":plans" => {
                for plan in PlanKind::ALL {
                    println!(
                        "  {:<10} {:<70} {}",
                        plan.name(),
                        plan.optimization(),
                        plan.cost_formula()
                    );
                }
            }
            ":stats" => {
                let s = session.stats();
                println!(
                    "  subsets: {} cached hits / {} derived / {} resolved / {} evicted; \
                     answers: {} hits / {} executed / {} evicted",
                    s.subset_hits,
                    s.subsets_derived,
                    s.subset_misses,
                    s.subset_evictions,
                    s.answer_hits,
                    s.answer_misses,
                    s.answer_evictions
                );
                println!(
                    "  columns: {} exact hits / {} derived / {} scanned / {} evicted",
                    s.column_hits, s.columns_derived, s.column_misses, s.column_evictions
                );
                println!(
                    "  optimizer: statistics catalog {}, {} feedback entries, {} mispicks",
                    if colarm.index().catalog().is_some() {
                        "present"
                    } else {
                        "absent (global-average costing)"
                    },
                    colarm.feedback().len(),
                    colarm.feedback().mispick_count()
                );
                let p = colarm::pool_stats();
                println!(
                    "  pool: {} workers, {} tasks, {} steals, {} parks/{} unparks",
                    p.workers, p.tasks_submitted, p.steals, p.parks, p.unparks
                );
            }
            ":advise" => match colarm::advisor::advise(
                colarm.index(),
                &colarm::advisor::AdvisorConfig::default(),
            ) {
                Ok(advice) => {
                    println!(
                        "  minsupport {:.1}%, minconfidence {:.1}%",
                        advice.minsupp * 100.0,
                        advice.minconf * 100.0
                    );
                    for r in &advice.ranges {
                        println!(
                            "  {:<24} {:>7} records  {:>6} fresh itemsets",
                            r.label, r.subset_size, r.fresh_local_cfis
                        );
                    }
                }
                Err(e) => println!("  error: {e}"),
            },
            ":cancel" => {
                session.cancel();
                println!("  cancel armed: the next query will be canceled");
            }
            _ if line.starts_with(":timeout") => {
                let arg = line.trim_start_matches(":timeout").trim();
                if arg.is_empty() {
                    match session.timeout() {
                        Some(t) => println!("  timeout: {t:?}"),
                        None => println!("  timeout: off"),
                    }
                } else if arg.eq_ignore_ascii_case("off") {
                    session.set_timeout(None);
                    println!("  timeout cleared");
                } else {
                    match arg.parse::<u64>() {
                        Ok(ms) => {
                            session.set_timeout(Some(Duration::from_millis(ms)));
                            println!("  timeout set to {ms} ms");
                        }
                        Err(_) => println!("  usage: :timeout <ms>|off"),
                    }
                }
            }
            _ if line.starts_with(":save") => {
                let path = line.trim_start_matches(":save").trim();
                if path.is_empty() {
                    println!("  usage: :save <path>");
                } else {
                    match colarm.save_index_snapshot(path) {
                        Ok(bytes) => println!("  snapshot written to {path} ({bytes} bytes)"),
                        Err(e) => println!("  error: {e}"),
                    }
                }
            }
            _ if line.starts_with(":load") => {
                let path = line.trim_start_matches(":load").trim();
                if path.is_empty() {
                    println!("  usage: :load <path>");
                } else {
                    match Colarm::load_index_snapshot(path) {
                        Ok(loaded) => {
                            let timeout = session.timeout();
                            colarm = loaded.into_shared();
                            schema = colarm.index().dataset().schema().clone();
                            session = QuerySession::new(colarm.clone());
                            session.set_timeout(timeout);
                            println!(
                                "  loaded {path}: {} records, {} MIPs",
                                colarm.index().dataset().num_records(),
                                colarm.index().num_mips()
                            );
                        }
                        Err(e) => println!("  error: {e}"),
                    }
                }
            }
            _ if line.starts_with(":explain") => {
                let text = line.trim_start_matches(":explain").trim();
                explain(&colarm, text);
            }
            _ if line.starts_with(":analyze") => {
                let text = line.trim_start_matches(":analyze").trim();
                analyze(&session, &schema, text);
                session.reset_cancel();
            }
            _ if line.starts_with(':') => {
                println!("  unknown command; :help lists commands");
            }
            _ if strip_analyze_prefix(line).is_some() => {
                analyze(&session, &schema, strip_analyze_prefix(line).unwrap());
                session.reset_cancel();
            }
            query_text => {
                match colarm::parse_query(query_text, &schema) {
                    Ok(query) => match session.execute(&query) {
                        Ok(answer) => {
                            println!(
                                "  plan {} over {} records in {:?} → {} rule(s)",
                                answer.plan.name(),
                                answer.subset_size,
                                answer.trace.total,
                                answer.rules.len()
                            );
                            for rule in answer.rules.iter().take(20) {
                                println!("    {}", rule.display(&schema));
                            }
                            if answer.rules.len() > 20 {
                                println!("    … and {} more", answer.rules.len() - 20);
                            }
                        }
                        Err(e) => println!("  error [{}]: {e}", e.code()),
                    },
                    Err(e) => println!("  parse error [{}]: {e}", e.code()),
                }
                // `:cancel` is one-shot: disarm after the attempt so the
                // session stays usable for the next query.
                session.reset_cancel();
            }
        }
    }
    Ok(())
}

/// `EXPLAIN ANALYZE <query>` → `Some("<query>")`, case-insensitively.
pub(crate) fn strip_analyze_prefix(line: &str) -> Option<&str> {
    let rest = line.trim_start();
    let mut words = rest.split_whitespace();
    if words.next()?.eq_ignore_ascii_case("EXPLAIN")
        && words.next()?.eq_ignore_ascii_case("ANALYZE")
    {
        let explain_len = rest.find(char::is_whitespace)?;
        let after_explain = rest[explain_len..].trim_start();
        let analyze_len = after_explain.find(char::is_whitespace)?;
        Some(after_explain[analyze_len..].trim_start())
    } else {
        None
    }
}

fn analyze(session: &QuerySession, schema: &colarm::data::Schema, text: &str) {
    match colarm::parse_query(text, schema) {
        Ok(query) => match session.explain_analyze(&query) {
            Ok(analyzed) => {
                for line in analyzed.report.to_string().lines() {
                    println!("  {line}");
                }
            }
            Err(e) => println!("  error [{}]: {e}", e.code()),
        },
        Err(e) => println!("  parse error [{}]: {e}", e.code()),
    }
}

fn explain(colarm: &Colarm, text: &str) {
    let schema = colarm.index().dataset().schema();
    match colarm::parse_query(text, schema) {
        Ok(query) => match colarm::explain(colarm, &query) {
            Ok(explanation) => {
                println!("  estimates:");
                for line in explanation.to_string().lines() {
                    println!("  {line}");
                }
            }
            Err(e) => println!("  error [{}]: {e}", e.code()),
        },
        Err(e) => println!("  parse error [{}]: {e}", e.code()),
    }
}

const HELP: &str = "  REPORT LOCALIZED ASSOCIATION RULES [FROM Dataset X]
      WHERE RANGE Attr = (v1, v2), Attr2 = (v)
      [AND ITEM ATTRIBUTES A, B]
      HAVING minsupport = 60% AND minconfidence = 80%;
  EXPLAIN ANALYZE <query>   execute + per-operator predicted vs. actual
  :schema | :plans | :explain <query> | :analyze <query> | :advise | :stats
  :timeout <ms>|off   per-query deadline (bare :timeout shows it)
  :cancel             arm the cancel token: the next query is canceled
  :save <path> | :load <path> | :quit";
