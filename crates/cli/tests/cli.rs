//! End-to-end tests of the `colarm-cli` binary: every subcommand is
//! exercised through a real process, including TSV indexing, snapshot
//! round-trips, the query language and the REPL.

use std::io::Write;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_colarm-cli");

fn salary_tsv(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("salary.tsv");
    let text = colarm_data::io::to_tsv(&colarm_data::synth::salary());
    std::fs::write(&path, text).unwrap();
    path
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("colarm-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn demo_prints_the_walkthrough() {
    let out = Command::new(BIN).arg("demo").output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Age=30-40"));
    assert!(text.contains("Salary=90K-120K"));
    assert!(text.contains("Simpson"));
}

#[test]
fn index_query_round_trip_via_snapshot() {
    let dir = tempdir("roundtrip");
    let tsv = salary_tsv(&dir);
    let snapshot = dir.join("index.snap");
    let out = Command::new(BIN)
        .args([
            "index",
            "--data",
            tsv.to_str().unwrap(),
            "--primary",
            "0.18",
            "--out",
            snapshot.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // The snapshot is the binary format (magic first), not JSON.
    let bytes = std::fs::read(&snapshot).unwrap();
    assert_eq!(&bytes[..8], b"COLARMIX");
    // Query against the snapshot (no re-mining).
    let out = Command::new(BIN)
        .args([
            "query",
            "--index",
            snapshot.to_str().unwrap(),
            "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = (Seattle), Gender = (F) \
             HAVING minsupport = 75% AND minconfidence = 90%;",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Age=30-40"), "missing RL in: {text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn legacy_json_snapshot_still_loads() {
    let dir = tempdir("legacy");
    let snapshot = dir.join("index.json");
    let index = colarm::MipIndex::build(
        colarm_data::synth::salary(),
        colarm::MipIndexConfig {
            primary_support: 0.18,
            ..Default::default()
        },
    )
    .unwrap();
    let json = colarm::IndexSnapshot::capture(&index).to_json().unwrap();
    std::fs::write(&snapshot, json).unwrap();
    let out = Command::new(BIN)
        .args([
            "query",
            "--index",
            snapshot.to_str().unwrap(),
            "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = (Seattle), Gender = (F) \
             HAVING minsupport = 75% AND minconfidence = 90%;",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("Age=30-40"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshot_fails_with_snapshot_error() {
    let dir = tempdir("corrupt");
    // A binary snapshot with its tail cut off.
    let tsv = salary_tsv(&dir);
    let snapshot = dir.join("index.snap");
    let out = Command::new(BIN)
        .args([
            "index",
            "--data",
            tsv.to_str().unwrap(),
            "--primary",
            "0.18",
            "--out",
            snapshot.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let bytes = std::fs::read(&snapshot).unwrap();
    std::fs::write(&snapshot, &bytes[..bytes.len() - 7]).unwrap();
    let out = Command::new(BIN)
        .args([
            "query",
            "--index",
            snapshot.to_str().unwrap(),
            "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Gender = (F) \
             HAVING minsupport = 50% AND minconfidence = 80%;",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("snapshot"), "unexpected error text: {err}");
    // Garbage that is neither binary nor JSON also fails cleanly.
    std::fs::write(&snapshot, b"\xFF\xFEnot a snapshot").unwrap();
    let out = Command::new(BIN)
        .args(["repl", "--index", snapshot.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("snapshot"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn query_against_tsv_directly() {
    let dir = tempdir("direct");
    let tsv = salary_tsv(&dir);
    let out = Command::new(BIN)
        .args([
            "query",
            "--data",
            tsv.to_str().unwrap(),
            "--primary",
            "0.18",
            "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Company = (Google) \
             HAVING minsupport = 50% AND minconfidence = 70%;",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("rule"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn advise_lists_paradox_subsets() {
    let dir = tempdir("advise");
    let tsv = salary_tsv(&dir);
    let out = Command::new(BIN)
        .args(["advise", "--data", tsv.to_str().unwrap(), "--primary", "0.18"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("minsupport"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repl_session_runs_queries_and_meta_commands() {
    let dir = tempdir("repl");
    let tsv = salary_tsv(&dir);
    let mut child = Command::new(BIN)
        .args(["repl", "--data", tsv.to_str().unwrap(), "--primary", "0.18"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let snap = dir.join("repl.snap");
    let script = format!(
        ":schema\n:plans\n\
         REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Gender = (F) \
         HAVING minsupport = 50% AND minconfidence = 80%;\n\
         :explain REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Gender = (F) \
         HAVING minsupport = 50% AND minconfidence = 80%;\n\
         :save {path}\n:load {path}\n\
         :stats\n:bogus\n:quit\n",
        path = snap.display()
    );
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Location"), "schema listing missing");
    assert!(text.contains("SS-E-U-V"), "plan table missing");
    assert!(text.contains("rule(s)"), "query output missing");
    assert!(text.contains("estimates"), "explain output missing");
    assert!(text.contains("snapshot written to"), "save output missing");
    assert!(text.contains("loaded"), "load output missing");
    assert!(text.contains("unknown command"), "meta error missing");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_timeout_query_reports_the_canceled_operator() {
    let dir = tempdir("timeout");
    let tsv = salary_tsv(&dir);
    let out = Command::new(BIN)
        .args([
            "query",
            "--data",
            tsv.to_str().unwrap(),
            "--primary",
            "0.18",
            "--timeout-ms",
            "0",
            "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Gender = (F) \
             HAVING minsupport = 50% AND minconfidence = 80%;",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "a 0ms deadline must cancel the query");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("canceled in") && err.contains("cost units"),
        "expected the Canceled error naming the operator, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repl_timeout_and_cancel_leave_the_session_usable() {
    let dir = tempdir("repl-cancel");
    let tsv = salary_tsv(&dir);
    let mut child = Command::new(BIN)
        .args(["repl", "--data", tsv.to_str().unwrap(), "--primary", "0.18"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    // A 0ms deadline cancels; clearing it makes the same query succeed.
    // `:cancel` arms the token for exactly one query: the next one is
    // canceled, the retry runs normally (nothing partial was cached).
    let script = ":timeout 0\n\
         REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Gender = (F) \
         HAVING minsupport = 50% AND minconfidence = 80%;\n\
         :timeout off\n\
         REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Gender = (F) \
         HAVING minsupport = 50% AND minconfidence = 80%;\n\
         :cancel\n\
         REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = (Seattle) \
         HAVING minsupport = 50% AND minconfidence = 80%;\n\
         REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Location = (Seattle) \
         HAVING minsupport = 50% AND minconfidence = 80%;\n\
         :quit\n";
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("timeout set to 0 ms"), "missing :timeout ack: {text}");
    assert!(text.contains("timeout cleared"), "missing :timeout off ack: {text}");
    assert!(text.contains("cancel armed"), "missing :cancel ack: {text}");
    assert_eq!(
        text.matches("canceled in").count(),
        2,
        "expected exactly the deadline + the armed-token cancellations: {text}"
    );
    assert_eq!(
        text.matches("rule(s)").count(),
        2,
        "both recovery queries must succeed: {text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_inputs_fail_cleanly() {
    let out = Command::new(BIN).output().unwrap();
    assert!(!out.status.success());
    let out = Command::new(BIN).arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let out = Command::new(BIN)
        .args(["query", "--data", "/nonexistent.tsv", "SELECT"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}
