//! Bulk loading (packing) for the one-time offline MIP-index build.
//!
//! The paper builds its R-tree once, offline, with the Kamel–Faloutsos
//! packing scheme \[11\], achieving (almost) 100 % space utilization. Two
//! packers are provided:
//!
//! * [`bulk_load_str`] — Sort-Tile-Recursive: recursively sort by each
//!   dimension's center and tile into slabs. Works for any dimensionality
//!   and is the default for COLARM's high-dimensional itemset spaces.
//! * [`bulk_load_hilbert`] — the Kamel–Faloutsos Hilbert packing: sort by
//!   the Hilbert index of box centers and fill leaves sequentially.
//!   Available when `dims * bits_per_dim ≤ 128`.
//!
//! Both produce trees whose every leaf (except possibly the last) is full.

use crate::geom::Rect;
use crate::hilbert::{hilbert_index, key_fits};
use crate::tree::RTree;

/// Bulk load with Sort-Tile-Recursive packing.
///
/// # Panics
/// Panics if entries disagree on dimensionality or `max_entries < 4`.
pub fn bulk_load_str<T>(
    dims: usize,
    max_entries: usize,
    mut entries: Vec<(Rect, u32, T)>,
) -> RTree<T> {
    assert!(dims > 0 && max_entries >= 4);
    assert!(entries.iter().all(|(r, _, _)| r.dims() == dims));
    if entries.is_empty() {
        return RTree::with_fanout(dims, max_entries);
    }
    let mut leaves = Vec::with_capacity(entries.len().div_ceil(max_entries));
    str_tile(&mut entries, 0, dims, max_entries, &mut leaves);
    RTree::from_packed(dims, max_entries, leaves)
}

/// Recursive STR tiling: sort the slice by dimension `dim`'s center, cut
/// into slabs sized so that later dimensions can still tile evenly, recurse.
fn str_tile<T>(
    entries: &mut Vec<(Rect, u32, T)>,
    dim: usize,
    dims: usize,
    max_entries: usize,
    leaves: &mut Vec<Vec<(Rect, u32, T)>>,
) {
    let n = entries.len();
    if n <= max_entries {
        leaves.push(std::mem::take(entries));
        return;
    }
    if dim + 1 >= dims {
        // Last dimension: sort and chop into full leaves.
        entries.sort_by_key(|(r, _, _)| r.center()[dim]);
        let mut rest = std::mem::take(entries);
        while !rest.is_empty() {
            let take = rest.len().min(max_entries);
            let tail = rest.split_off(take);
            leaves.push(rest);
            rest = tail;
        }
        return;
    }
    let pages = n.div_ceil(max_entries) as f64;
    let remaining_dims = (dims - dim) as f64;
    let slabs = pages.powf(1.0 / remaining_dims).ceil() as usize;
    let slab_size = n.div_ceil(slabs.max(1));
    entries.sort_by_key(|(r, _, _)| r.center()[dim]);
    let mut rest = std::mem::take(entries);
    while !rest.is_empty() {
        let take = rest.len().min(slab_size);
        let tail = rest.split_off(take);
        let mut slab = rest;
        str_tile(&mut slab, dim + 1, dims, max_entries, leaves);
        rest = tail;
    }
}

/// Bulk load with Kamel–Faloutsos Hilbert packing. `domains` gives the
/// coordinate range per dimension (used to size the key).
///
/// # Panics
/// Panics if the Hilbert key would exceed 128 bits — check
/// [`hilbert_packable`] first (COLARM falls back to STR in that case).
pub fn bulk_load_hilbert<T>(
    dims: usize,
    max_entries: usize,
    domains: &[u32],
    mut entries: Vec<(Rect, u32, T)>,
) -> RTree<T> {
    assert!(dims > 0 && max_entries >= 4);
    assert_eq!(domains.len(), dims);
    let bits = bits_needed(domains);
    assert!(
        key_fits(dims, bits),
        "hilbert key does not fit; use STR packing"
    );
    if entries.is_empty() {
        return RTree::with_fanout(dims, max_entries);
    }
    entries.sort_by_cached_key(|(r, _, _)| hilbert_index(&r.center(), bits));
    let mut leaves = Vec::with_capacity(entries.len().div_ceil(max_entries));
    let mut rest = entries;
    while !rest.is_empty() {
        let take = rest.len().min(max_entries);
        let tail = rest.split_off(take);
        leaves.push(rest);
        rest = tail;
    }
    RTree::from_packed(dims, max_entries, leaves)
}

/// True when Hilbert packing is applicable to this space.
pub fn hilbert_packable(domains: &[u32]) -> bool {
    !domains.is_empty() && key_fits(domains.len(), bits_needed(domains))
}

fn bits_needed(domains: &[u32]) -> u32 {
    domains
        .iter()
        .map(|&d| 32 - d.saturating_sub(1).leading_zeros())
        .max()
        .unwrap_or(1)
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Containment;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_entries(n: usize, dims: usize, seed: u64) -> Vec<(Rect, u32, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let lo: Vec<u32> = (0..dims).map(|_| rng.gen_range(0..60u32)).collect();
                let hi: Vec<u32> = lo.iter().map(|l| l + rng.gen_range(0..4u32)).collect();
                (Rect::new(lo, hi), rng.gen_range(0..500u32), i)
            })
            .collect()
    }

    fn check_complete_and_correct(tree: &RTree<usize>, data: &[(Rect, u32, usize)]) {
        tree.check_invariants();
        assert_eq!(tree.len(), data.len());
        let q = Rect::new(vec![10; tree.dims()], vec![40; tree.dims()]);
        let (hits, _) = tree.query(&q, 100);
        let mut got: Vec<usize> = hits.iter().map(|h| *h.payload).collect();
        got.sort_unstable();
        let mut expected: Vec<usize> = data
            .iter()
            .filter(|(r, w, _)| *w >= 100 && q.intersects(r))
            .map(|(_, _, i)| *i)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
        // Containment classification agrees with geometry.
        for h in &hits {
            let expect = if q.contains(h.rect) {
                Containment::Contained
            } else {
                Containment::Partial
            };
            assert_eq!(h.containment, expect);
        }
    }

    #[test]
    fn str_pack_small_and_large() {
        for n in [1usize, 7, 16, 17, 350, 2000] {
            let data = random_entries(n, 3, n as u64);
            let tree = bulk_load_str(3, 16, data.clone());
            check_complete_and_correct(&tree, &data);
        }
    }

    #[test]
    fn hilbert_pack_matches_str_results() {
        let data = random_entries(800, 2, 5);
        let domains = vec![64u32, 64];
        assert!(hilbert_packable(&domains));
        let h = bulk_load_hilbert(2, 16, &domains, data.clone());
        check_complete_and_correct(&h, &data);
    }

    #[test]
    fn packing_achieves_high_leaf_utilization() {
        // The point of Kamel–Faloutsos packing: ~100 % full leaves.
        let data = random_entries(1600, 2, 9);
        let tree = bulk_load_str(2, 16, data);
        // 1600 entries / 16 per leaf = exactly 100 leaves if fully packed.
        let stats = tree.stats(&[64, 64]);
        let leaf_level = stats.levels.last().unwrap();
        assert_eq!(leaf_level.nodes, 100, "leaves should be fully packed");
    }

    #[test]
    fn packed_tree_beats_insertion_tree_on_node_accesses() {
        let data = random_entries(4000, 2, 13);
        let packed = bulk_load_str(2, 16, data.clone());
        let mut inserted = RTree::with_fanout(2, 16);
        for (r, w, i) in data {
            inserted.insert(r, w, i);
        }
        let q = Rect::new(vec![5, 5], vec![20, 20]);
        let (_, cp) = packed.query(&q, 0);
        let (_, ci) = inserted.query(&q, 0);
        assert!(
            cp.nodes_visited <= ci.nodes_visited,
            "packed {} vs inserted {}",
            cp.nodes_visited,
            ci.nodes_visited
        );
    }

    #[test]
    fn empty_bulk_loads() {
        let t: RTree<usize> = bulk_load_str(4, 8, Vec::new());
        assert!(t.is_empty());
        let t: RTree<usize> = bulk_load_hilbert(2, 8, &[16, 16], Vec::new());
        assert!(t.is_empty());
    }

    #[test]
    fn hilbert_packable_detects_limits() {
        assert!(hilbert_packable(&[256, 256]));
        assert!(!hilbert_packable(&[1u32 << 20; 8])); // 8 × 20 bits > 128
        assert!(!hilbert_packable(&[]));
    }

    #[test]
    fn bits_needed_is_tight() {
        assert_eq!(bits_needed(&[2]), 1);
        assert_eq!(bits_needed(&[3]), 2);
        assert_eq!(bits_needed(&[256]), 8);
        assert_eq!(bits_needed(&[257]), 9);
        assert_eq!(bits_needed(&[1]), 1);
    }
}
