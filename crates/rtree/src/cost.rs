//! Per-level tree statistics and the Theodoridis–Sellis cost model.
//!
//! COLARM's cost formulae (paper Equations 1, 3 and 6) estimate the
//! SEARCH / SUPPORTED-SEARCH / SELECT costs as the expected number of
//! R-tree node accesses from \[21\]:
//!
//! ```text
//! NA(q) ≈ Σ_{levels j below root} N_j · Π_k min(1, s_{j,k} + q_k)
//! ```
//!
//! where `N_j` is the node count at level `j`, `s_{j,k}` the average
//! normalized extent of level-`j` node MBRs along dimension `k`, and `q_k`
//! the query box's normalized extent. These statistics are gathered once at
//! index-build time (the paper's "index statistics" of Figure 2) and reused
//! for every online estimate.

use crate::geom::Rect;
use crate::tree::RTree;
use serde::{Deserialize, Serialize};

/// Statistics of one tree level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelStats {
    /// Number of nodes at this level (`N_j`).
    pub nodes: usize,
    /// Average normalized MBR extent per dimension (`D^{P_j,k}_avg`).
    pub avg_extents: Vec<f64>,
    /// Average entries per node at this level.
    pub avg_fanout: f64,
    /// Average of the nodes' max-weight bounds (for supported-search
    /// selectivity estimates).
    pub avg_max_weight: f64,
}

/// Statistics of a whole tree, root (level 0) downward to leaves.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TreeStats {
    /// Per-level statistics; `levels\[0\]` is the root level.
    pub levels: Vec<LevelStats>,
    /// Normalizing domain size per dimension.
    pub domains: Vec<u32>,
    /// Total entries stored.
    pub entries: usize,
}

impl TreeStats {
    /// Gather statistics with one walk over the tree.
    pub fn collect<T>(tree: &RTree<T>, domains: &[u32]) -> TreeStats {
        assert_eq!(domains.len(), tree.dims());
        let mut acc: Vec<(usize, Vec<f64>, usize, f64)> = Vec::new();
        tree.walk_levels(|level, mbr, max_weight, entry_count| {
            if acc.len() <= level {
                acc.resize(level + 1, (0, vec![0.0; domains.len()], 0, 0.0));
            }
            let slot = &mut acc[level];
            slot.0 += 1;
            for (s, e) in slot.1.iter_mut().zip(mbr.normalized_extents(domains)) {
                *s += e;
            }
            slot.2 += entry_count;
            slot.3 += max_weight as f64;
        });
        let levels = acc
            .into_iter()
            .map(|(nodes, extent_sums, entries, weight_sum)| LevelStats {
                nodes,
                avg_extents: extent_sums.iter().map(|s| s / nodes as f64).collect(),
                avg_fanout: entries as f64 / nodes as f64,
                avg_max_weight: weight_sum / nodes as f64,
            })
            .collect();
        TreeStats {
            levels,
            domains: domains.to_vec(),
            entries: tree.len(),
        }
    }

    /// Tree height covered by the statistics.
    pub fn height(&self) -> usize {
        self.levels.len()
    }
}

/// Expected node accesses for a query box, per Theodoridis–Sellis. The
/// root is always accessed; every lower level contributes
/// `N_j · Π_k min(1, s_{j,k} + q_k)` capped at `N_j`.
pub fn expected_node_accesses(stats: &TreeStats, query: &Rect) -> f64 {
    if stats.levels.is_empty() {
        return 0.0;
    }
    let q_ext = query.normalized_extents(&stats.domains);
    let mut total = 1.0; // the root
    for level in &stats.levels[1..] {
        let p: f64 = level
            .avg_extents
            .iter()
            .zip(&q_ext)
            .map(|(s, q)| (s + q).min(1.0))
            .product();
        total += (level.nodes as f64 * p).min(level.nodes as f64);
    }
    total
}

/// Expected number of *entries* (MIPs) intersected by the query box —
/// paper Lemma 4.1: `|{I_S^Q}| ≈ N · Π (D^P_avg + D^Q_avg)`.
pub fn expected_intersections(stats: &TreeStats, query: &Rect) -> f64 {
    let Some(leaf) = stats.levels.last() else {
        return 0.0;
    };
    let q_ext = query.normalized_extents(&stats.domains);
    let p: f64 = leaf
        .avg_extents
        .iter()
        .zip(&q_ext)
        .map(|(s, q)| (s + q).min(1.0))
        .product();
    stats.entries as f64 * p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk::bulk_load_str;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn build(n: usize, seed: u64) -> (RTree<usize>, Vec<(Rect, u32, usize)>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<(Rect, u32, usize)> = (0..n)
            .map(|i| {
                let lo = [rng.gen_range(0..120u32), rng.gen_range(0..120u32)];
                let hi = [lo[0] + rng.gen_range(0..6u32), lo[1] + rng.gen_range(0..6u32)];
                (Rect::new(lo.to_vec(), hi.to_vec()), 1, i)
            })
            .collect();
        (bulk_load_str(2, 16, data.clone()), data)
    }

    #[test]
    fn stats_shape_matches_tree() {
        let (tree, _) = build(1000, 1);
        let stats = tree.stats(&[128, 128]);
        assert_eq!(stats.height(), tree.height());
        assert_eq!(stats.entries, 1000);
        assert_eq!(stats.levels[0].nodes, 1, "exactly one root");
        // Node counts grow downward.
        for w in stats.levels.windows(2) {
            assert!(w[0].nodes <= w[1].nodes);
        }
        // Extents shrink downward (children are smaller than parents).
        let root_ext: f64 = stats.levels[0].avg_extents.iter().sum();
        let leaf_ext: f64 = stats.levels.last().unwrap().avg_extents.iter().sum();
        assert!(leaf_ext < root_ext);
    }

    #[test]
    fn estimate_tracks_observed_node_accesses() {
        let (tree, _) = build(5000, 2);
        let stats = tree.stats(&[128, 128]);
        for (side, _) in [(10u32, ()), (40, ()), (100, ())] {
            let q = Rect::new(vec![10, 10], vec![(10 + side).min(127), (10 + side).min(127)]);
            let (_, counters) = tree.query(&q, 0);
            let est = expected_node_accesses(&stats, &q);
            let observed = counters.nodes_visited as f64;
            // The model is approximate; demand agreement within 3× both ways.
            assert!(
                est / observed < 3.0 && observed / est < 3.0,
                "side {side}: est {est:.1} vs observed {observed}"
            );
        }
    }

    #[test]
    fn estimate_monotone_in_query_size() {
        let (tree, _) = build(3000, 3);
        let stats = tree.stats(&[128, 128]);
        let mut prev = 0.0;
        for hi in [5u32, 20, 60, 127] {
            let q = Rect::new(vec![0, 0], vec![hi, hi]);
            let est = expected_node_accesses(&stats, &q);
            assert!(est >= prev);
            prev = est;
        }
    }

    #[test]
    fn expected_intersections_tracks_reality() {
        let (tree, data) = build(4000, 4);
        let stats = tree.stats(&[128, 128]);
        let q = Rect::new(vec![20, 20], vec![80, 80]);
        let actual = data.iter().filter(|(r, _, _)| q.intersects(r)).count() as f64;
        let est = expected_intersections(&stats, &q);
        assert!(
            est / actual < 2.0 && actual / est < 2.0,
            "est {est:.0} vs actual {actual}"
        );
    }

    #[test]
    fn empty_tree_stats() {
        let t: RTree<()> = RTree::new(2);
        let stats = t.stats(&[8, 8]);
        assert_eq!(stats.height(), 0);
        let q = Rect::new(vec![0, 0], vec![1, 1]);
        assert_eq!(expected_node_accesses(&stats, &q), 0.0);
        assert_eq!(expected_intersections(&stats, &q), 0.0);
    }
}
