//! n-dimensional Hilbert curve indexing (Skilling's transform).
//!
//! The Kamel–Faloutsos packed R-tree \[11\] orders entries along a Hilbert
//! curve before packing them into leaves, which keeps spatially close boxes
//! in the same node. This module computes the Hilbert index of an
//! n-dimensional point with `bits` bits per coordinate, for
//! `n * bits ≤ 128` (higher-dimensional COLARM indexes fall back to STR
//! packing, which has no such limit — see [`crate::bulk`]).
//!
//! Reference: J. Skilling, "Programming the Hilbert curve", AIP Conference
//! Proceedings 707 (2004).

/// Maximum total key width supported.
pub const MAX_KEY_BITS: u32 = 128;

/// True when a Hilbert key fits for this dimensionality / precision.
pub fn key_fits(dims: usize, bits: u32) -> bool {
    bits >= 1 && (dims as u32).saturating_mul(bits) <= MAX_KEY_BITS
}

/// Hilbert index of `coords` with `bits` bits per coordinate.
///
/// # Panics
/// Panics if the key does not fit (`!key_fits`), if `coords` is empty, or
/// if any coordinate needs more than `bits` bits.
pub fn hilbert_index(coords: &[u32], bits: u32) -> u128 {
    assert!(!coords.is_empty(), "empty coordinate vector");
    assert!(key_fits(coords.len(), bits), "hilbert key would overflow");
    assert!(
        coords.iter().all(|&c| bits == 32 || c < (1u32 << bits)),
        "coordinate exceeds bit width"
    );
    let mut x: Vec<u32> = coords.to_vec();
    axes_to_transpose(&mut x, bits);
    interleave(&x, bits)
}

/// Skilling's in-place transform from axis coordinates to the "transposed"
/// Hilbert representation.
fn axes_to_transpose(x: &mut [u32], bits: u32) {
    let n = x.len();
    if bits < 2 {
        // 1-bit coordinates: the Gray-code stage below is a no-op loop; the
        // transpose equals the Gray-encoded axes.
        gray_encode_stage(x);
        return;
    }
    let m = 1u32 << (bits - 1);
    // Inverse undo excess work.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..n {
            if x[i] & q != 0 {
                x[0] ^= p; // invert
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    gray_encode_stage(x);
}

fn gray_encode_stage(x: &mut [u32]) {
    let n = x.len();
    for i in 1..n {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u32;
    let mut q = 1u32 << 31;
    while q > 1 {
        if x[n - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for v in x.iter_mut() {
        *v ^= t;
    }
}

/// Interleave the transposed representation into a single key: bit `b` of
/// axis `i` lands at key position `b * n + (n - 1 - i)` (most significant
/// bits first).
fn interleave(x: &[u32], bits: u32) -> u128 {
    let n = x.len();
    let mut key: u128 = 0;
    for b in (0..bits).rev() {
        for (i, &xi) in x.iter().enumerate() {
            key <<= 1;
            key |= ((xi >> b) & 1) as u128;
            let _ = i;
        }
    }
    debug_assert!(bits as usize * n <= 128);
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn key_fits_limits() {
        assert!(key_fits(2, 16));
        assert!(key_fits(128, 1));
        assert!(!key_fits(129, 1));
        assert!(!key_fits(5, 32));
        assert!(!key_fits(2, 0));
    }

    #[test]
    fn two_d_bijective_and_adjacent() {
        // All 2^8 = 256 points of a 16×16 grid: indices must be a
        // permutation of 0..256 and consecutive indices must be grid
        // neighbours (the defining Hilbert property).
        let bits = 4;
        let mut by_index: Vec<(u128, [u32; 2])> = Vec::new();
        for xx in 0..16u32 {
            for y in 0..16u32 {
                by_index.push((hilbert_index(&[xx, y], bits), [xx, y]));
            }
        }
        let distinct: HashSet<u128> = by_index.iter().map(|(k, _)| *k).collect();
        assert_eq!(distinct.len(), 256, "indices must be unique");
        assert!(by_index.iter().all(|(k, _)| *k < 256));
        by_index.sort_by_key(|(k, _)| *k);
        for w in by_index.windows(2) {
            let (a, b) = (w[0].1, w[1].1);
            let manhattan = a[0].abs_diff(b[0]) + a[1].abs_diff(b[1]);
            assert_eq!(manhattan, 1, "curve must move one step: {a:?} → {b:?}");
        }
    }

    #[test]
    fn three_d_bijective() {
        let bits = 3;
        let mut keys = HashSet::new();
        for x in 0..8u32 {
            for y in 0..8u32 {
                for z in 0..8u32 {
                    assert!(keys.insert(hilbert_index(&[x, y, z], bits)));
                }
            }
        }
        assert_eq!(keys.len(), 512);
    }

    #[test]
    fn one_bit_coordinates_work() {
        let keys: HashSet<u128> = (0..8u32)
            .map(|m| hilbert_index(&[m & 1, (m >> 1) & 1, (m >> 2) & 1], 1))
            .collect();
        assert_eq!(keys.len(), 8);
        assert!(keys.iter().all(|&k| k < 8));
    }

    #[test]
    #[should_panic(expected = "coordinate exceeds bit width")]
    fn rejects_wide_coordinates() {
        hilbert_index(&[16, 0], 4);
    }

    #[test]
    #[should_panic(expected = "hilbert key would overflow")]
    fn rejects_oversized_keys() {
        hilbert_index(&[0u32; 20], 8);
    }

    #[test]
    fn locality_beats_row_major_on_average() {
        // Weak but meaningful check: average index distance of grid
        // neighbours should be far smaller than for row-major order.
        let bits = 5;
        let side = 32u32;
        let mut hilbert_total: f64 = 0.0;
        let mut rowmajor_total: f64 = 0.0;
        let mut count = 0.0;
        for x in 0..side - 1 {
            for y in 0..side {
                let a = hilbert_index(&[x, y], bits) as f64;
                let b = hilbert_index(&[x + 1, y], bits) as f64;
                hilbert_total += (a - b).abs();
                let ra = (x * side + y) as f64;
                let rb = ((x + 1) * side + y) as f64;
                rowmajor_total += (ra - rb).abs();
                count += 1.0;
            }
        }
        assert!(hilbert_total / count < rowmajor_total / count);
    }
}
