//! Multidimensional index substrate for COLARM (EDBT 2014).
//!
//! The paper's MIP-index stores the bounding box of every prestored closed
//! frequent itemset in an R-tree (§3.3) and extends it into a **Supported
//! R-tree** (§4.3, Figure 6) whose entries carry global support counts so
//! that subtrees whose best possible local support cannot reach `minsupp`
//! are pruned during the range search.
//!
//! The `rstar` crate suggested by the reproduction notes is unavailable in
//! this offline environment — and would not fit anyway: COLARM needs
//! support-annotated nodes, Kamel–Faloutsos-style packing for the one-time
//! offline build, per-level statistics for the Theodoridis–Sellis cost
//! model, and node-access accounting for cost-model validation. So the tree
//! is built from scratch:
//!
//! * [`geom::Rect`] — integer-coordinate boxes of runtime dimensionality
//!   (attribute-value cells of the discretized space, paper Figure 1).
//! * [`tree::RTree`] — Guttman R-tree with quadratic split; every leaf
//!   entry carries a `weight` (the itemset's global support) and every
//!   inner entry the max weight of its subtree, giving the Supported
//!   R-tree's pruning bound for free.
//! * [`bulk`] — Sort-Tile-Recursive and Hilbert-order packing (~100 % leaf
//!   utilization, the property of the paper's packed R-tree \[11\]).
//! * [`hilbert`] — n-dimensional Hilbert curve (Skilling's transform).
//! * [`cost`] — per-level statistics and the Theodoridis–Sellis expected
//!   node-access estimate used by COLARM's Equations 1, 3 and 6.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod bulk;
pub mod cost;
pub mod geom;
pub mod hilbert;
pub mod tree;

pub use cost::{expected_node_accesses, LevelStats, TreeStats};
pub use geom::Rect;
pub use tree::{Containment, QueryCounters, RTree, SearchHit};
