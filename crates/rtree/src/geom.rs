//! Integer-coordinate axis-aligned boxes of runtime dimensionality.
//!
//! COLARM's space is the product of discretized attribute domains (paper
//! Figure 1): dimension `a` has coordinates `0..domain_size(a)` and a box
//! is an inclusive `[lo, hi]` interval per dimension. An itemset's box is a
//! point on the attributes it constrains and full-domain on the rest; the
//! focal subset's box is the hull of the user's per-attribute selections.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned box with **inclusive** integer bounds per dimension.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    lo: Box<[u32]>,
    hi: Box<[u32]>,
}

impl Rect {
    /// Build from inclusive bounds.
    ///
    /// # Panics
    /// Panics if the slices differ in length, are empty, or `lo > hi` on
    /// any dimension.
    pub fn new(lo: impl Into<Box<[u32]>>, hi: impl Into<Box<[u32]>>) -> Self {
        let (lo, hi) = (lo.into(), hi.into());
        assert_eq!(lo.len(), hi.len(), "dimension mismatch");
        assert!(!lo.is_empty(), "zero-dimensional rect");
        assert!(
            lo.iter().zip(hi.iter()).all(|(l, h)| l <= h),
            "inverted interval"
        );
        Rect { lo, hi }
    }

    /// A single point.
    pub fn point(coords: &[u32]) -> Self {
        Rect::new(coords.to_vec(), coords.to_vec())
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Inclusive lower bounds.
    #[inline]
    pub fn lo(&self) -> &[u32] {
        &self.lo
    }

    /// Inclusive upper bounds.
    #[inline]
    pub fn hi(&self) -> &[u32] {
        &self.hi
    }

    /// True when the boxes intersect (inclusive bounds).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.lo
            .iter()
            .zip(&*other.hi)
            .all(|(l, h)| l <= h)
            && other.lo.iter().zip(&*self.hi).all(|(l, h)| l <= h)
    }

    /// True when `self` fully contains `other`.
    #[inline]
    pub fn contains(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.lo.iter().zip(&*other.lo).all(|(s, o)| s <= o)
            && self.hi.iter().zip(&*other.hi).all(|(s, o)| s >= o)
    }

    /// True when the point lies inside the box.
    pub fn contains_point(&self, p: &[u32]) -> bool {
        debug_assert_eq!(self.dims(), p.len());
        self.lo.iter().zip(p).all(|(l, x)| l <= x) && self.hi.iter().zip(p).all(|(h, x)| h >= x)
    }

    /// Number of integer cells covered (product of `hi - lo + 1`), as `f64`
    /// to avoid overflow in high dimensions.
    pub fn volume(&self) -> f64 {
        self.lo
            .iter()
            .zip(&*self.hi)
            .map(|(l, h)| (h - l + 1) as f64)
            .product()
    }

    /// Sum of side lengths (the margin used by some split heuristics).
    pub fn margin(&self) -> f64 {
        self.lo
            .iter()
            .zip(&*self.hi)
            .map(|(l, h)| (h - l + 1) as f64)
            .sum()
    }

    /// Smallest box containing both.
    pub fn union(&self, other: &Rect) -> Rect {
        debug_assert_eq!(self.dims(), other.dims());
        Rect {
            lo: self
                .lo
                .iter()
                .zip(&*other.lo)
                .map(|(a, b)| *a.min(b))
                .collect(),
            hi: self
                .hi
                .iter()
                .zip(&*other.hi)
                .map(|(a, b)| *a.max(b))
                .collect(),
        }
    }

    /// Grow in place to cover `other`.
    pub fn extend(&mut self, other: &Rect) {
        debug_assert_eq!(self.dims(), other.dims());
        for (a, b) in self.lo.iter_mut().zip(&*other.lo) {
            *a = (*a).min(*b);
        }
        for (a, b) in self.hi.iter_mut().zip(&*other.hi) {
            *a = (*a).max(*b);
        }
    }

    /// Volume increase that covering `other` would cost — Guttman's
    /// least-enlargement insertion criterion.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).volume() - self.volume()
    }

    /// Volume of the intersection, 0 if disjoint.
    pub fn overlap_volume(&self, other: &Rect) -> f64 {
        if !self.intersects(other) {
            return 0.0;
        }
        self.lo
            .iter()
            .zip(&*self.hi)
            .zip(other.lo.iter().zip(&*other.hi))
            .map(|((sl, sh), (ol, oh))| ((*sh).min(*oh) - (*sl).max(*ol) + 1) as f64)
            .product()
    }

    /// Center coordinate per dimension (rounded down), for packing orders.
    pub fn center(&self) -> Vec<u32> {
        self.lo
            .iter()
            .zip(&*self.hi)
            .map(|(l, h)| l + (h - l) / 2)
            .collect()
    }

    /// Normalized extent per dimension given the domain sizes: side length
    /// divided by domain size — the `D^P_avg` inputs of the paper's cost
    /// model (Table 3).
    pub fn normalized_extents(&self, domains: &[u32]) -> Vec<f64> {
        debug_assert_eq!(self.dims(), domains.len());
        self.lo
            .iter()
            .zip(&*self.hi)
            .zip(domains)
            .map(|((l, h), d)| (h - l + 1) as f64 / (*d).max(1) as f64)
            .collect()
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for d in 0..self.dims() {
            if d > 0 {
                write!(f, " × ")?;
            }
            write!(f, "{}..{}", self.lo[d], self.hi[d])?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: &[u32], hi: &[u32]) -> Rect {
        Rect::new(lo.to_vec(), hi.to_vec())
    }

    #[test]
    fn intersection_and_containment() {
        let a = r(&[0, 0], &[4, 4]);
        let b = r(&[4, 4], &[6, 6]);
        let c = r(&[5, 0], &[6, 3]);
        assert!(a.intersects(&b)); // inclusive: share corner (4,4)
        assert!(!a.intersects(&c));
        assert!(a.contains(&r(&[1, 1], &[3, 4])));
        assert!(!a.contains(&b));
        assert!(a.contains_point(&[4, 0]));
        assert!(!a.contains_point(&[5, 0]));
    }

    #[test]
    fn volume_margin_union() {
        let a = r(&[0, 0], &[1, 2]); // 2 × 3 cells
        assert_eq!(a.volume(), 6.0);
        assert_eq!(a.margin(), 5.0);
        let b = r(&[3, 1], &[3, 1]);
        let u = a.union(&b);
        assert_eq!(u, r(&[0, 0], &[3, 2]));
        assert_eq!(a.enlargement(&b), 12.0 - 6.0);
        assert_eq!(a.overlap_volume(&b), 0.0);
        assert_eq!(a.overlap_volume(&r(&[1, 1], &[9, 9])), 1.0 * 2.0);
    }

    #[test]
    fn extend_grows_in_place() {
        let mut a = r(&[2, 2], &[3, 3]);
        a.extend(&r(&[0, 5], &[1, 9]));
        assert_eq!(a, r(&[0, 2], &[3, 9]));
    }

    #[test]
    fn center_and_extents() {
        let a = r(&[0, 2], &[3, 2]);
        assert_eq!(a.center(), vec![1, 2]);
        assert_eq!(a.normalized_extents(&[4, 10]), vec![1.0, 0.1]);
    }

    #[test]
    #[should_panic(expected = "inverted interval")]
    fn rejects_inverted() {
        r(&[2], &[1]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_mixed_dims() {
        Rect::new(vec![0u32], vec![1u32, 2]);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(r(&[0, 1], &[2, 3]).to_string(), "[0..2 × 1..3]");
    }

    proptest::proptest! {
        #[test]
        fn union_contains_both(a_lo in proptest::collection::vec(0u32..50, 3),
                               b_lo in proptest::collection::vec(0u32..50, 3),
                               a_ext in proptest::collection::vec(0u32..20, 3),
                               b_ext in proptest::collection::vec(0u32..20, 3)) {
            let a_hi: Vec<u32> = a_lo.iter().zip(&a_ext).map(|(l, e)| l + e).collect();
            let b_hi: Vec<u32> = b_lo.iter().zip(&b_ext).map(|(l, e)| l + e).collect();
            let a = Rect::new(a_lo, a_hi);
            let b = Rect::new(b_lo, b_hi);
            let u = a.union(&b);
            proptest::prop_assert!(u.contains(&a) && u.contains(&b));
            proptest::prop_assert!(u.volume() >= a.volume().max(b.volume()));
            // Symmetry checks.
            proptest::prop_assert_eq!(a.intersects(&b), b.intersects(&a));
            proptest::prop_assert_eq!(a.overlap_volume(&b), b.overlap_volume(&a));
        }
    }
}
