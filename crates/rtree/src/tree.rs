//! Guttman R-tree with weight-annotated entries (the Supported R-tree).
//!
//! Leaf entries carry a `weight` — in COLARM, the itemset's global support
//! count `|D^G_I|` — and every node maintains the **maximum** weight in its
//! subtree. A range search with a `min_weight` bound then skips whole
//! subtrees that cannot contain a qualifying itemset: this is exactly the
//! paper's SUPPORTED-SEARCH operator (§4.3) since
//! `supp_Q(I) ≤ |D^G_I| / |DQ|` (Lemma 4.4) turns `minsupp` into a weight
//! bound `⌈minsupp · |DQ|⌉`. A plain SEARCH is a query with `min_weight = 0`.
//!
//! Nodes live in an arena; inserts use Guttman's least-enlargement descent
//! and quadratic split. Offline construction uses the packing algorithms in
//! [`crate::bulk`]. Searches report [`QueryCounters`] (node accesses, leaf
//! entries touched, weight prunes) so COLARM can validate its cost model
//! against observed behaviour.

use crate::geom::Rect;
use serde::{Deserialize, Serialize};

/// Default maximum entries per node (fanout).
pub const DEFAULT_MAX_ENTRIES: usize = 16;

/// Relationship of a matching entry's box to the query box.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Containment {
    /// Entry box fully inside the query box.
    Contained,
    /// Entry box intersects but is not contained.
    Partial,
}

/// One search result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchHit<'a, T> {
    /// The stored payload.
    pub payload: &'a T,
    /// The entry's bounding box.
    pub rect: &'a Rect,
    /// The entry's weight (global support count in COLARM).
    pub weight: u32,
    /// Hull-level containment classification w.r.t. the query box.
    pub containment: Containment,
}

/// Instrumentation accumulated by one search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCounters {
    /// Nodes visited (the paper's disk-access proxy).
    pub nodes_visited: usize,
    /// Leaf entries whose boxes were tested.
    pub leaf_entries_checked: usize,
    /// Subtrees/entries skipped by the weight (support) bound.
    pub weight_pruned: usize,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct LeafEntry<T> {
    rect: Rect,
    weight: u32,
    payload: T,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum NodeKind<T> {
    Leaf(Vec<LeafEntry<T>>),
    Inner(Vec<u32>),
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node<T> {
    mbr: Rect,
    max_weight: u32,
    kind: NodeKind<T>,
}

/// An R-tree storing `(Rect, weight, T)` entries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RTree<T> {
    nodes: Vec<Node<T>>,
    root: u32,
    height: usize,
    len: usize,
    dims: usize,
    max_entries: usize,
    min_entries: usize,
}

impl<T> RTree<T> {
    /// An empty tree over `dims` dimensions with the default fanout.
    pub fn new(dims: usize) -> Self {
        Self::with_fanout(dims, DEFAULT_MAX_ENTRIES)
    }

    /// An empty tree with an explicit maximum node fanout (≥ 4).
    pub fn with_fanout(dims: usize, max_entries: usize) -> Self {
        assert!(dims > 0, "zero-dimensional tree");
        assert!(max_entries >= 4, "fanout must be at least 4");
        RTree {
            nodes: Vec::new(),
            root: 0,
            height: 0,
            len: 0,
            dims,
            max_entries,
            min_entries: (max_entries * 2).div_ceil(5),
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (0 for empty, 1 for a single leaf root).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Maximum entries per node.
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// Bounding box of everything stored, `None` when empty.
    pub fn bounds(&self) -> Option<&Rect> {
        (!self.is_empty()).then(|| &self.nodes[self.root as usize].mbr)
    }

    /// Insert an entry (Guttman: least-enlargement descent, quadratic
    /// split on overflow).
    pub fn insert(&mut self, rect: Rect, weight: u32, payload: T) {
        assert_eq!(rect.dims(), self.dims, "entry dimensionality mismatch");
        if self.is_empty() {
            self.root = self.push_node(Node {
                mbr: rect.clone(),
                max_weight: weight,
                kind: NodeKind::Leaf(vec![LeafEntry {
                    rect,
                    weight,
                    payload,
                }]),
            });
            self.height = 1;
            self.len = 1;
            return;
        }
        let mut path = Vec::with_capacity(self.height);
        let leaf = self.choose_leaf(&rect, &mut path);
        if let NodeKind::Leaf(entries) = &mut self.nodes[leaf as usize].kind {
            entries.push(LeafEntry {
                rect: rect.clone(),
                weight,
                payload,
            });
        } else {
            unreachable!("choose_leaf returns a leaf");
        }
        self.nodes[leaf as usize].mbr.extend(&rect);
        self.nodes[leaf as usize].max_weight = self.nodes[leaf as usize].max_weight.max(weight);
        self.len += 1;
        self.handle_overflow(leaf, path);
    }

    /// Range query: all entries whose boxes intersect `query` and whose
    /// weight is at least `min_weight`. Entries are classified as contained
    /// or partial w.r.t. the query hull.
    pub fn query(&self, query: &Rect, min_weight: u32) -> (Vec<SearchHit<'_, T>>, QueryCounters) {
        assert_eq!(query.dims(), self.dims, "query dimensionality mismatch");
        let mut hits = Vec::new();
        let mut counters = QueryCounters::default();
        if self.is_empty() {
            return (hits, counters);
        }
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            counters.nodes_visited += 1;
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    for e in entries {
                        counters.leaf_entries_checked += 1;
                        if e.weight < min_weight {
                            counters.weight_pruned += 1;
                            continue;
                        }
                        if query.intersects(&e.rect) {
                            hits.push(SearchHit {
                                payload: &e.payload,
                                rect: &e.rect,
                                weight: e.weight,
                                containment: if query.contains(&e.rect) {
                                    Containment::Contained
                                } else {
                                    Containment::Partial
                                },
                            });
                        }
                    }
                }
                NodeKind::Inner(children) => {
                    for &c in children {
                        let child = &self.nodes[c as usize];
                        if child.max_weight < min_weight {
                            counters.weight_pruned += 1;
                            continue;
                        }
                        if query.intersects(&child.mbr) {
                            stack.push(c);
                        }
                    }
                }
            }
        }
        (hits, counters)
    }

    /// Visit every stored entry (in arbitrary order).
    pub fn for_each(&self, mut f: impl FnMut(&Rect, u32, &T)) {
        if self.is_empty() {
            return;
        }
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            match &self.nodes[id as usize].kind {
                NodeKind::Leaf(entries) => {
                    for e in entries {
                        f(&e.rect, e.weight, &e.payload);
                    }
                }
                NodeKind::Inner(children) => stack.extend(children.iter().copied()),
            }
        }
    }

    /// Per-level node counts and average normalized extents, for the
    /// Theodoridis–Sellis cost model. `domains` gives each dimension's
    /// size. Level 0 is the root.
    pub fn stats(&self, domains: &[u32]) -> crate::cost::TreeStats {
        crate::cost::TreeStats::collect(self, domains)
    }

    /// Remove one entry matching `rect` and `payload` exactly (Guttman
    /// delete with tree condensation: underflowing nodes are dissolved and
    /// their entries reinserted). Returns `false` when no such entry
    /// exists. Freed arena slots are not reused — repeated heavy churn is
    /// better served by a bulk rebuild, which is also how COLARM maintains
    /// its one-time offline index.
    pub fn remove(&mut self, rect: &Rect, payload: &T) -> bool
    where
        T: PartialEq,
    {
        assert_eq!(rect.dims(), self.dims, "entry dimensionality mismatch");
        if self.is_empty() {
            return false;
        }
        let Some(path) = self.find_leaf(self.root, rect, payload, &mut Vec::new()) else {
            return false;
        };
        let leaf = *path.last().expect("path ends at the leaf");
        if let NodeKind::Leaf(entries) = &mut self.nodes[leaf as usize].kind {
            let pos = entries
                .iter()
                .position(|e| &e.rect == rect && &e.payload == payload)
                .expect("find_leaf located the entry");
            entries.remove(pos);
        }
        self.len -= 1;
        // Condense bottom-up, collecting orphaned leaf entries.
        let mut orphans: Vec<LeafEntry<T>> = Vec::new();
        for i in (0..path.len()).rev() {
            let id = path[i];
            let count = match &self.nodes[id as usize].kind {
                NodeKind::Leaf(e) => e.len(),
                NodeKind::Inner(c) => c.len(),
            };
            if i == 0 {
                // Root: shrink if possible, handled below.
                if count > 0 {
                    self.refresh_summaries(id);
                }
                break;
            }
            if count < self.min_entries {
                // Dissolve this node: unhook from its parent and stash its
                // remaining leaf entries for reinsertion.
                let parent = path[i - 1];
                if let NodeKind::Inner(children) = &mut self.nodes[parent as usize].kind {
                    children.retain(|&c| c != id);
                }
                self.collect_leaf_entries(id, &mut orphans);
            } else {
                self.refresh_summaries(id);
            }
        }
        // Shrink the root.
        loop {
            match &self.nodes[self.root as usize].kind {
                NodeKind::Inner(children) if children.is_empty() => {
                    self.nodes.clear();
                    self.root = 0;
                    self.height = 0;
                    break;
                }
                NodeKind::Inner(children) if children.len() == 1 => {
                    self.root = children[0];
                    self.height -= 1;
                }
                NodeKind::Leaf(entries) if entries.is_empty() => {
                    self.nodes.clear();
                    self.root = 0;
                    self.height = 0;
                    break;
                }
                _ => {
                    self.refresh_summaries(self.root);
                    break;
                }
            }
        }
        // Reinsert orphans.
        self.len -= orphans.len();
        for e in orphans {
            self.insert(e.rect, e.weight, e.payload);
        }
        true
    }

    /// DFS for the leaf holding an exact `(rect, payload)` entry; returns
    /// the root-to-leaf path.
    fn find_leaf(
        &self,
        id: u32,
        rect: &Rect,
        payload: &T,
        prefix: &mut Vec<u32>,
    ) -> Option<Vec<u32>>
    where
        T: PartialEq,
    {
        prefix.push(id);
        let node = &self.nodes[id as usize];
        match &node.kind {
            NodeKind::Leaf(entries) => {
                if entries
                    .iter()
                    .any(|e| &e.rect == rect && &e.payload == payload)
                {
                    let path = prefix.clone();
                    prefix.pop();
                    return Some(path);
                }
            }
            NodeKind::Inner(children) => {
                for &c in children {
                    if self.nodes[c as usize].mbr.contains(rect) {
                        if let Some(path) = self.find_leaf(c, rect, payload, prefix) {
                            prefix.pop();
                            return Some(path);
                        }
                    }
                }
            }
        }
        prefix.pop();
        None
    }

    /// Drain every leaf entry under `id` into `out` (the node's slots are
    /// left empty; the arena garbage is reclaimed on the next bulk build).
    fn collect_leaf_entries(&mut self, id: u32, out: &mut Vec<LeafEntry<T>>) {
        match std::mem::replace(&mut self.nodes[id as usize].kind, NodeKind::Inner(Vec::new())) {
            NodeKind::Leaf(mut entries) => out.append(&mut entries),
            NodeKind::Inner(children) => {
                for c in children {
                    self.collect_leaf_entries(c, out);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    fn push_node(&mut self, node: Node<T>) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(node);
        id
    }

    /// Descend to the best leaf for `rect`, recording the path of inner
    /// node ids (root first) and growing MBRs on the way down.
    fn choose_leaf(&mut self, rect: &Rect, path: &mut Vec<u32>) -> u32 {
        let mut id = self.root;
        loop {
            match &self.nodes[id as usize].kind {
                NodeKind::Leaf(_) => return id,
                NodeKind::Inner(children) => {
                    let mut best = children[0];
                    let mut best_enl = f64::INFINITY;
                    let mut best_vol = f64::INFINITY;
                    for &c in children {
                        let mbr = &self.nodes[c as usize].mbr;
                        let enl = mbr.enlargement(rect);
                        let vol = mbr.volume();
                        if enl < best_enl || (enl == best_enl && vol < best_vol) {
                            best = c;
                            best_enl = enl;
                            best_vol = vol;
                        }
                    }
                    path.push(id);
                    self.nodes[id as usize].mbr.extend(rect);
                    id = best;
                }
            }
        }
    }

    /// Split overflowing nodes up the recorded path; grow a new root if the
    /// old root splits.
    fn handle_overflow(&mut self, mut id: u32, mut path: Vec<u32>) {
        loop {
            let overflow = match &self.nodes[id as usize].kind {
                NodeKind::Leaf(e) => e.len() > self.max_entries,
                NodeKind::Inner(c) => c.len() > self.max_entries,
            };
            self.refresh_summaries(id);
            if !overflow {
                // Weights/MBRs above may still be stale; refresh the path.
                while let Some(p) = path.pop() {
                    self.refresh_summaries(p);
                }
                return;
            }
            let sibling = self.split(id);
            match path.pop() {
                Some(parent) => {
                    if let NodeKind::Inner(children) = &mut self.nodes[parent as usize].kind {
                        children.push(sibling);
                    } else {
                        unreachable!("parents are inner nodes");
                    }
                    id = parent;
                }
                None => {
                    // Root split: new root over the two halves.
                    let mbr = self.nodes[id as usize]
                        .mbr
                        .union(&self.nodes[sibling as usize].mbr);
                    let max_weight = self.nodes[id as usize]
                        .max_weight
                        .max(self.nodes[sibling as usize].max_weight);
                    let new_root = self.push_node(Node {
                        mbr,
                        max_weight,
                        kind: NodeKind::Inner(vec![id, sibling]),
                    });
                    self.root = new_root;
                    self.height += 1;
                    return;
                }
            }
        }
    }

    /// Recompute a node's MBR and max weight from its contents.
    fn refresh_summaries(&mut self, id: u32) {
        let (mbr, weight) = match &self.nodes[id as usize].kind {
            NodeKind::Leaf(entries) => {
                let mut it = entries.iter();
                let first = it.next().expect("nodes are never left empty");
                let mut mbr = first.rect.clone();
                let mut w = first.weight;
                for e in it {
                    mbr.extend(&e.rect);
                    w = w.max(e.weight);
                }
                (mbr, w)
            }
            NodeKind::Inner(children) => {
                let mut it = children.iter();
                let first = *it.next().expect("nodes are never left empty");
                let mut mbr = self.nodes[first as usize].mbr.clone();
                let mut w = self.nodes[first as usize].max_weight;
                for &c in it {
                    mbr.extend(&self.nodes[c as usize].mbr);
                    w = w.max(self.nodes[c as usize].max_weight);
                }
                (mbr, w)
            }
        };
        self.nodes[id as usize].mbr = mbr;
        self.nodes[id as usize].max_weight = weight;
    }

    /// Quadratic split: returns the id of the new sibling node.
    fn split(&mut self, id: u32) -> u32 {
        enum Items<T> {
            Leaf(Vec<LeafEntry<T>>),
            Inner(Vec<u32>),
        }
        // Pull the items out, split their rects into two groups, rebuild.
        let items = match &mut self.nodes[id as usize].kind {
            NodeKind::Leaf(entries) => Items::Leaf(std::mem::take(entries)),
            NodeKind::Inner(children) => Items::Inner(std::mem::take(children)),
        };
        match items {
            Items::Leaf(entries) => {
                let rects: Vec<&Rect> = entries.iter().map(|e| &e.rect).collect();
                let assignment = quadratic_partition(&rects, self.min_entries);
                let (mut a, mut b) = (Vec::new(), Vec::new());
                for (entry, &to_b) in entries.into_iter().zip(&assignment) {
                    if to_b {
                        b.push(entry);
                    } else {
                        a.push(entry);
                    }
                }
                self.nodes[id as usize].kind = NodeKind::Leaf(a);
                self.refresh_summaries(id);
                let sibling = self.push_node(Node {
                    mbr: b[0].rect.clone(),
                    max_weight: 0,
                    kind: NodeKind::Leaf(b),
                });
                self.refresh_summaries(sibling);
                sibling
            }
            Items::Inner(children) => {
                let rects: Vec<&Rect> =
                    children.iter().map(|&c| &self.nodes[c as usize].mbr).collect();
                let assignment = quadratic_partition(&rects, self.min_entries);
                let (mut a, mut b) = (Vec::new(), Vec::new());
                for (child, &to_b) in children.into_iter().zip(&assignment) {
                    if to_b {
                        b.push(child);
                    } else {
                        a.push(child);
                    }
                }
                self.nodes[id as usize].kind = NodeKind::Inner(a);
                self.refresh_summaries(id);
                let mbr = self.nodes[b[0] as usize].mbr.clone();
                let sibling = self.push_node(Node {
                    mbr,
                    max_weight: 0,
                    kind: NodeKind::Inner(b),
                });
                self.refresh_summaries(sibling);
                sibling
            }
        }
    }

    /// Build a tree of the given height directly from pre-packed leaves —
    /// used by the bulk loaders in [`crate::bulk`].
    pub(crate) fn from_packed(
        dims: usize,
        max_entries: usize,
        entries_per_leaf: Vec<Vec<(Rect, u32, T)>>,
    ) -> Self {
        let mut tree = RTree::with_fanout(dims, max_entries);
        if entries_per_leaf.is_empty() {
            return tree;
        }
        let mut level: Vec<u32> = Vec::with_capacity(entries_per_leaf.len());
        for group in entries_per_leaf {
            assert!(!group.is_empty() && group.len() <= max_entries);
            let leaf_entries: Vec<LeafEntry<T>> = group
                .into_iter()
                .map(|(rect, weight, payload)| LeafEntry {
                    rect,
                    weight,
                    payload,
                })
                .collect();
            tree.len += leaf_entries.len();
            let id = tree.push_node(Node {
                mbr: leaf_entries[0].rect.clone(),
                max_weight: 0,
                kind: NodeKind::Leaf(leaf_entries),
            });
            tree.refresh_summaries(id);
            level.push(id);
        }
        tree.height = 1;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(max_entries));
            for chunk in level.chunks(max_entries) {
                let id = tree.push_node(Node {
                    mbr: tree.nodes[chunk[0] as usize].mbr.clone(),
                    max_weight: 0,
                    kind: NodeKind::Inner(chunk.to_vec()),
                });
                tree.refresh_summaries(id);
                next.push(id);
            }
            level = next;
            tree.height += 1;
        }
        tree.root = level[0];
        tree
    }

    /// Walk nodes level by level, giving `(level, mbr, max_weight,
    /// entry_count)` for each node; level 0 is the root. Used by the
    /// statistics collector and by COLARM's supported-search selectivity
    /// estimator.
    pub fn walk_levels(&self, mut f: impl FnMut(usize, &Rect, u32, usize)) {
        if self.is_empty() {
            return;
        }
        let mut frontier = vec![self.root];
        let mut level = 0usize;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &id in &frontier {
                let node = &self.nodes[id as usize];
                let count = match &node.kind {
                    NodeKind::Leaf(e) => e.len(),
                    NodeKind::Inner(c) => {
                        next.extend(c.iter().copied());
                        c.len()
                    }
                };
                f(level, &node.mbr, node.max_weight, count);
            }
            frontier = next;
            level += 1;
        }
    }

    /// Check structural invariants (test support): MBR coverage, weight
    /// bounds, entry-count bounds, uniform leaf depth.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        if self.is_empty() {
            return;
        }
        let mut leaf_depths = Vec::new();
        self.check_node(self.root, 0, &mut leaf_depths);
        assert!(
            leaf_depths.windows(2).all(|w| w[0] == w[1]),
            "leaves at different depths"
        );
        assert_eq!(leaf_depths[0] + 1, self.height, "height mismatch");
    }

    fn check_node(&self, id: u32, depth: usize, leaf_depths: &mut Vec<usize>) {
        let node = &self.nodes[id as usize];
        match &node.kind {
            NodeKind::Leaf(entries) => {
                assert!(!entries.is_empty(), "empty leaf");
                assert!(entries.len() <= self.max_entries, "leaf overflow");
                let mut w = 0;
                for e in entries {
                    assert!(node.mbr.contains(&e.rect), "leaf MBR does not cover entry");
                    w = w.max(e.weight);
                }
                assert_eq!(node.max_weight, w, "stale leaf weight bound");
                leaf_depths.push(depth);
            }
            NodeKind::Inner(children) => {
                assert!(!children.is_empty(), "empty inner node");
                assert!(children.len() <= self.max_entries, "inner overflow");
                let mut w = 0;
                for &c in children {
                    let child = &self.nodes[c as usize];
                    assert!(node.mbr.contains(&child.mbr), "inner MBR does not cover child");
                    w = w.max(child.max_weight);
                    self.check_node(c, depth + 1, leaf_depths);
                }
                assert_eq!(node.max_weight, w, "stale inner weight bound");
            }
        }
    }
}

/// Guttman's quadratic split over a set of rects: returns, per rect,
/// whether it goes to group B. Both groups get at least `min_entries`.
fn quadratic_partition(rects: &[&Rect], min_entries: usize) -> Vec<bool> {
    let n = rects.len();
    debug_assert!(n >= 2);
    // Pick seeds: the pair wasting the most volume if grouped together.
    let (mut seed_a, mut seed_b, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let waste = rects[i].union(rects[j]).volume() - rects[i].volume() - rects[j].volume();
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }
    let mut to_b = vec![false; n];
    to_b[seed_b] = true;
    let mut mbr_a = rects[seed_a].clone();
    let mut mbr_b = rects[seed_b].clone();
    let (mut count_a, mut count_b) = (1usize, 1usize);
    let mut remaining: Vec<usize> = (0..n).filter(|&i| i != seed_a && i != seed_b).collect();
    while !remaining.is_empty() {
        // Force-assign when one group must take everything left to reach
        // its minimum.
        if count_a + remaining.len() <= min_entries {
            for &i in &remaining {
                mbr_a.extend(rects[i]);
            }
            break;
        }
        if count_b + remaining.len() <= min_entries {
            for &i in &remaining {
                to_b[i] = true;
                mbr_b.extend(rects[i]);
            }
            break;
        }
        // Pick the rect with the greatest preference difference.
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .map(|(pos, &i)| {
                let d = (mbr_a.enlargement(rects[i]) - mbr_b.enlargement(rects[i])).abs();
                (pos, d)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("nonempty");
        let i = remaining.swap_remove(pos);
        let (ea, eb) = (mbr_a.enlargement(rects[i]), mbr_b.enlargement(rects[i]));
        let choose_b = match ea.total_cmp(&eb) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => mbr_b.volume() < mbr_a.volume(),
        };
        if choose_b {
            to_b[i] = true;
            mbr_b.extend(rects[i]);
            count_b += 1;
        } else {
            mbr_a.extend(rects[i]);
            count_a += 1;
        }
    }
    to_b
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn rect2(lo: [u32; 2], hi: [u32; 2]) -> Rect {
        Rect::new(lo.to_vec(), hi.to_vec())
    }

    fn random_rects(n: usize, seed: u64) -> Vec<(Rect, u32)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let lo = [rng.gen_range(0..100u32), rng.gen_range(0..100u32)];
                let hi = [lo[0] + rng.gen_range(0..10u32), lo[1] + rng.gen_range(0..10u32)];
                (rect2(lo, hi), rng.gen_range(0..1000u32))
            })
            .collect()
    }

    fn brute_force(
        data: &[(Rect, u32)],
        query: &Rect,
        min_weight: u32,
    ) -> Vec<(usize, Containment)> {
        data.iter()
            .enumerate()
            .filter(|(_, (r, w))| *w >= min_weight && query.intersects(r))
            .map(|(i, (r, _))| {
                (
                    i,
                    if query.contains(r) {
                        Containment::Contained
                    } else {
                        Containment::Partial
                    },
                )
            })
            .collect()
    }

    #[test]
    fn empty_tree_queries_cleanly() {
        let t: RTree<usize> = RTree::new(2);
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.bounds().is_none());
        let (hits, counters) = t.query(&rect2([0, 0], [9, 9]), 0);
        assert!(hits.is_empty());
        assert_eq!(counters.nodes_visited, 0);
    }

    #[test]
    fn insert_query_matches_brute_force() {
        let data = random_rects(500, 7);
        let mut t = RTree::with_fanout(2, 8);
        for (i, (r, w)) in data.iter().enumerate() {
            t.insert(r.clone(), *w, i);
        }
        t.check_invariants();
        assert_eq!(t.len(), 500);
        assert!(t.height() >= 3);
        for (qseed, min_w) in [(1u64, 0u32), (2, 300), (3, 900)] {
            let mut rng = StdRng::seed_from_u64(qseed);
            for _ in 0..20 {
                let lo = [rng.gen_range(0..80u32), rng.gen_range(0..80u32)];
                let hi = [lo[0] + rng.gen_range(0..30u32), lo[1] + rng.gen_range(0..30u32)];
                let q = rect2(lo, hi);
                let (hits, _) = t.query(&q, min_w);
                let mut got: Vec<(usize, Containment)> =
                    hits.iter().map(|h| (*h.payload, h.containment)).collect();
                got.sort_by_key(|(i, _)| *i);
                let mut expected = brute_force(&data, &q, min_w);
                expected.sort_by_key(|(i, _)| *i);
                assert_eq!(got, expected);
            }
        }
    }

    #[test]
    fn weight_pruning_reduces_node_accesses() {
        let data = random_rects(2000, 11);
        let mut t = RTree::with_fanout(2, 8);
        for (i, (r, w)) in data.iter().enumerate() {
            t.insert(r.clone(), *w, i);
        }
        let q = rect2([0, 0], [99, 99]);
        let (_, all) = t.query(&q, 0);
        let (hits, pruned) = t.query(&q, 990);
        assert!(hits.iter().all(|h| h.weight >= 990));
        assert!(
            pruned.nodes_visited < all.nodes_visited,
            "support bound should prune subtrees: {} !< {}",
            pruned.nodes_visited,
            all.nodes_visited
        );
        assert!(pruned.weight_pruned > 0);
    }

    #[test]
    fn bounds_and_for_each_cover_everything() {
        let data = random_rects(100, 3);
        let mut t = RTree::new(2);
        for (i, (r, w)) in data.iter().enumerate() {
            t.insert(r.clone(), *w, i);
        }
        let bounds = t.bounds().unwrap().clone();
        let mut seen = 0usize;
        t.for_each(|r, _, _| {
            assert!(bounds.contains(r));
            seen += 1;
        });
        assert_eq!(seen, 100);
    }

    #[test]
    fn duplicate_rects_are_kept() {
        let mut t = RTree::new(2);
        let r = rect2([1, 1], [2, 2]);
        for i in 0..50 {
            t.insert(r.clone(), i, i as usize);
        }
        t.check_invariants();
        let (hits, _) = t.query(&r, 0);
        assert_eq!(hits.len(), 50);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn rejects_wrong_dims() {
        let mut t: RTree<()> = RTree::new(3);
        t.insert(rect2([0, 0], [1, 1]), 0, ());
    }

    #[test]
    fn remove_keeps_the_tree_correct() {
        let data = random_rects(400, 21);
        let mut t = RTree::with_fanout(2, 6);
        for (i, (r, w)) in data.iter().enumerate() {
            t.insert(r.clone(), *w, i);
        }
        // Remove every even-indexed entry.
        for (i, (r, _)) in data.iter().enumerate() {
            if i % 2 == 0 {
                assert!(t.remove(r, &i), "entry {i} must be removable");
            }
        }
        t.check_invariants();
        assert_eq!(t.len(), 200);
        let q = rect2([10, 10], [80, 80]);
        let (hits, _) = t.query(&q, 0);
        let mut got: Vec<usize> = hits.iter().map(|h| *h.payload).collect();
        got.sort_unstable();
        let expected: Vec<usize> = brute_force(&data, &q, 0)
            .into_iter()
            .map(|(i, _)| i)
            .filter(|i| i % 2 == 1)
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn remove_to_empty_and_reuse() {
        let data = random_rects(60, 22);
        let mut t = RTree::with_fanout(2, 5);
        for (i, (r, w)) in data.iter().enumerate() {
            t.insert(r.clone(), *w, i);
        }
        for (i, (r, _)) in data.iter().enumerate() {
            assert!(t.remove(r, &i));
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        // The emptied tree accepts new inserts.
        t.insert(rect2([1, 1], [2, 2]), 7, 999);
        t.check_invariants();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_missing_entry_is_a_noop() {
        let mut t = RTree::with_fanout(2, 5);
        t.insert(rect2([0, 0], [1, 1]), 1, 1usize);
        assert!(!t.remove(&rect2([0, 0], [1, 1]), &2)); // wrong payload
        assert!(!t.remove(&rect2([5, 5], [6, 6]), &1)); // wrong rect
        assert_eq!(t.len(), 1);
        t.check_invariants();
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        #[test]
        fn random_insert_remove_matches_reference(seed in 0u64..200, n in 10usize..80) {
            let data = random_rects(n, seed);
            let mut t = RTree::with_fanout(2, 5);
            for (i, (r, w)) in data.iter().enumerate() {
                t.insert(r.clone(), *w, i);
            }
            // Remove a pseudo-random subset.
            let keep: Vec<bool> = (0..n).map(|i| !(i * 7 + seed as usize).is_multiple_of(3)).collect();
            for (i, (r, _)) in data.iter().enumerate() {
                if !keep[i] {
                    proptest::prop_assert!(t.remove(r, &i));
                }
            }
            t.check_invariants();
            let q = rect2([0, 0], [109, 109]);
            let (hits, _) = t.query(&q, 0);
            let mut got: Vec<usize> = hits.iter().map(|h| *h.payload).collect();
            got.sort_unstable();
            let expected: Vec<usize> = (0..n).filter(|&i| keep[i]).collect();
            proptest::prop_assert_eq!(got, expected);
        }

        #[test]
        fn random_trees_match_brute_force(seed in 0u64..500, n in 1usize..120) {
            let data = random_rects(n, seed);
            let mut t = RTree::with_fanout(2, 5);
            for (i, (r, w)) in data.iter().enumerate() {
                t.insert(r.clone(), *w, i);
            }
            t.check_invariants();
            let q = rect2([20, 20], [70, 70]);
            let (hits, _) = t.query(&q, 400);
            let mut got: Vec<usize> = hits.iter().map(|h| *h.payload).collect();
            got.sort_unstable();
            let mut expected: Vec<usize> =
                brute_force(&data, &q, 400).into_iter().map(|(i, _)| i).collect();
            expected.sort_unstable();
            proptest::prop_assert_eq!(got, expected);
        }
    }
}
