//! Figure 10 bench: execution time of all six mining plans on the mushroom analog
//! across focal-subset sizes (the paper's per-chart series, at Fast scale;
//! the `figures fig10` binary prints the full minsupp × |DQ| grid).

use colarm::{LocalizedQuery, PlanKind};
use colarm_bench::{build_system, mushroom_spec, random_subset_spec, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let spec = mushroom_spec(Scale::Fast);
    let system = build_system(&spec);
    let mut rng = StdRng::seed_from_u64(13);
    let mut group = c.benchmark_group("fig10_mushroom_plans");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200));
    for &frac in &[0.5f64, 0.1, 0.01] {
        let (range, subset) = random_subset_spec(
            system.index().dataset(),
            system.index().vertical(),
            frac,
            &mut rng,
        );
        if subset.is_empty() {
            continue;
        }
        let query = LocalizedQuery::builder()
            .range(range)
            .minsupp(spec.minsupps[1])
            .minconf(spec.minconf)
            .build().expect("valid query");
        for plan in PlanKind::ALL {
            group.bench_function(
                format!("dq_{:.0}pct/{}", frac * 100.0, plan.name()),
                |b| {
                    b.iter(|| {
                        black_box(
                            colarm::execute_plan(system.index(), &query, &subset, plan)
                                .expect("plan runs")
                                .rules
                                .len(),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
