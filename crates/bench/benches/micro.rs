//! Microbenchmarks of the substrate hot paths: tidset algebra, R-tree
//! range search, IT-tree closure lookup, and per-itemset rule generation.

use colarm::LocalizedQuery;
use colarm_bench::{build_system, mushroom_spec, random_subset_spec, Scale};
use colarm_data::{Itemset, Tidset};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    // Tidset intersections: balanced (merge path) and skewed (gallop path).
    let mut rng = StdRng::seed_from_u64(3);
    let big = Tidset::from_unsorted((0..200_000u32).filter(|_| rng.gen_bool(0.5)));
    let mid = Tidset::from_unsorted((0..200_000u32).filter(|_| rng.gen_bool(0.4)));
    let small = Tidset::from_unsorted((0..200_000u32).filter(|_| rng.gen_bool(0.002)));
    group.bench_function("tidset/intersect_balanced", |b| {
        b.iter(|| black_box(big.intersect(&mid).len()))
    });
    group.bench_function("tidset/intersect_skewed_gallop", |b| {
        b.iter(|| black_box(big.intersect(&small).len()))
    });
    group.bench_function("tidset/intersect_count_skewed", |b| {
        b.iter(|| black_box(small.intersect_count(&big)))
    });

    // Hybrid-kernel representation pairs on a 100k universe (the
    // BENCH_tidset.json scenarios): dense×dense takes the word-AND +
    // popcount path, sparse×dense probes bitmap words, sparse×sparse
    // stays on the merge/gallop path of the seed.
    let dense10 = Tidset::from_unsorted((0..100_000u32).filter(|_| rng.gen_bool(0.1)));
    let dense50 = Tidset::from_unsorted((0..100_000u32).filter(|_| rng.gen_bool(0.5)));
    let sparse_a = Tidset::from_unsorted((0..100_000u32).filter(|_| rng.gen_bool(0.0005)));
    let sparse_b = Tidset::from_unsorted((0..100_000u32).filter(|_| rng.gen_bool(0.02)));
    group.bench_function("tidset/intersect_count_dense10_dense50", |b| {
        b.iter(|| black_box(dense10.intersect_count(&dense50)))
    });
    group.bench_function("tidset/intersect_count_sparse_dense", |b| {
        b.iter(|| black_box(sparse_a.intersect_count(&dense50)))
    });
    group.bench_function("tidset/intersect_count_sparse_sparse_gallop", |b| {
        b.iter(|| black_box(sparse_a.intersect_count(&sparse_b)))
    });
    let mut scratch = Tidset::new();
    group.bench_function("tidset/intersect_into_dense_reused_buffer", |b| {
        b.iter(|| {
            dense10.intersect_into(&dense50, &mut scratch);
            black_box(scratch.len())
        })
    });

    // Index-level operations on the mushroom analog.
    let spec = mushroom_spec(Scale::Fast);
    let system = build_system(&spec);
    let index = system.index();
    let mut rng = StdRng::seed_from_u64(4);
    let (range, subset) = random_subset_spec(index.dataset(), index.vertical(), 0.1, &mut rng);
    let rect = index.range_rect(&range);
    group.bench_function("rtree/range_search", |b| {
        b.iter(|| black_box(index.rtree().query(&rect, 0).0.len()))
    });
    group.bench_function("rtree/supported_range_search", |b| {
        b.iter(|| black_box(index.rtree().query(&rect, 500).0.len()))
    });
    // Closure lookup of a 2-item subset of a long stored CFI.
    let (_, probe_cfi) = index
        .ittree()
        .iter()
        .max_by_key(|(_, c)| c.itemset.len())
        .expect("nonempty index");
    let probe: Itemset = probe_cfi.itemset.items().iter().copied().take(2).collect();
    group.bench_function("ittree/closure_lookup", |b| {
        b.iter(|| black_box(index.ittree().closure(&probe)))
    });
    // One full optimized query end-to-end.
    let query = LocalizedQuery::builder()
        .range(range)
        .minsupp(spec.minsupps[1])
        .minconf(spec.minconf)
        .build().expect("valid query");
    let _ = subset;
    let request = colarm::QueryRequest::query(&query);
    group.bench_function("end_to_end/optimized_query", |b| {
        b.iter(|| black_box(system.run(&request).expect("runs").rules.len()))
    });
    // Plan-operator parallelism: the same plan at 1 thread vs the session
    // default (answers are bit-identical; only the duration moves).
    let focal = index.resolve_subset(query.range.clone()).expect("resolves");
    for (label, threads) in [("threads_1", 1), ("threads_default", 0)] {
        group.bench_function(format!("end_to_end/ssvs_{label}"), |b| {
            b.iter(|| {
                let a = colarm::plan::execute_plan_with(
                    index,
                    &query,
                    &focal,
                    colarm::PlanKind::SsVs,
                    colarm::ExecOptions::with_threads(threads),
                )
                .expect("runs");
                black_box(a.rules.len())
            })
        });
    }
    // Metrics-reporting overhead: counters are tallied unconditionally in
    // per-worker `Meter`s; the `metrics` flag only controls whether the
    // aggregated block is attached to the trace. The on/off cases bound
    // the cost of that design (budget: within 5% of each other).
    for (label, metrics) in [("metrics_off", false), ("metrics_on", true)] {
        group.bench_function(format!("end_to_end/ssvs_{label}"), |b| {
            b.iter(|| {
                let a = colarm::plan::execute_plan_with(
                    index,
                    &query,
                    &focal,
                    colarm::PlanKind::SsVs,
                    colarm::ExecOptions::with_threads(1).with_metrics(metrics),
                )
                .expect("runs");
                black_box(a.rules.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
