//! Figure 12 bench: the optimization gains measured head-to-head — the
//! basic S-E-V plan against each optimized plan on a representative
//! partially-overlapped query per dataset. The `figures fig12` binary
//! prints the full averaged gain chart.

use colarm::{LocalizedQuery, PlanKind};
use colarm_bench::{all_specs, build_system, random_subset_spec, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_gains");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200));
    for spec in all_specs(Scale::Fast) {
        let system = build_system(&spec);
        let mut rng = StdRng::seed_from_u64(21);
        let (range, subset) = random_subset_spec(
            system.index().dataset(),
            system.index().vertical(),
            0.2,
            &mut rng,
        );
        if subset.is_empty() {
            continue;
        }
        let query = LocalizedQuery::builder()
            .range(range)
            .minsupp(spec.minsupps[0])
            .minconf(spec.minconf)
            .build().expect("valid query");
        for plan in [
            PlanKind::Sev,
            PlanKind::Svs,
            PlanKind::SsEv,
            PlanKind::SsVs,
            PlanKind::SsEuv,
        ] {
            group.bench_function(format!("{}/{}", spec.name, plan.name()), |b| {
                b.iter(|| {
                    black_box(
                        colarm::execute_plan(system.index(), &query, &subset, plan)
                            .expect("plan runs")
                            .rules
                            .len(),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
