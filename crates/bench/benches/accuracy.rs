//! §5.1 bench: the COLARM optimizer's plan-selection step itself — the
//! paper claims plan estimation is "a constant time computation of six
//! formulae", so choosing a plan must be orders of magnitude cheaper than
//! executing one. Accuracy numbers are printed by `figures accuracy`.

use colarm::LocalizedQuery;
use colarm_bench::{all_specs, build_system, random_subset_spec, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer_choose");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1000));
    for spec in all_specs(Scale::Fast) {
        let system = build_system(&spec);
        let mut rng = StdRng::seed_from_u64(41);
        let (range, subset) = random_subset_spec(
            system.index().dataset(),
            system.index().vertical(),
            0.2,
            &mut rng,
        );
        let query = LocalizedQuery::builder()
            .range(range)
            .minsupp(spec.minsupps[1])
            .minconf(spec.minconf)
            .build().expect("valid query");
        group.bench_function(format!("{}/choose", spec.name), |b| {
            b.iter(|| {
                black_box(
                    system
                        .optimizer()
                        .choose(system.index(), &query, &subset)
                        .chosen,
                )
            })
        });
        // Contrast: resolving the subset itself (part of every query).
        group.bench_function(format!("{}/resolve_subset", spec.name), |b| {
            b.iter(|| {
                black_box(
                    system
                        .index()
                        .resolve_subset(query.range.clone())
                        .expect("resolves")
                        .len(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
