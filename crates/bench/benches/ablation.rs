//! Ablation benches (DESIGN.md experiment X1): each design choice the
//! paper motivates, measured in isolation on the chess analog —
//! (a) the supported R-tree bound, (b) the contained/partial differential
//! treatment, (c) packed vs insertion-built R-trees.

use colarm::{LocalizedQuery, MipIndexConfig, Packing, PlanKind};
use colarm_bench::{build_system, chess_spec, random_subset_spec, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let spec = chess_spec(Scale::Fast);
    let system = build_system(&spec);
    let index = system.index();
    let mut rng = StdRng::seed_from_u64(51);
    let (range, subset) = random_subset_spec(index.dataset(), index.vertical(), 0.1, &mut rng);
    let query = LocalizedQuery::builder()
        .range(range.clone())
        .minsupp(spec.minsupps[1])
        .minconf(spec.minconf)
        .build().expect("valid query");
    let min = query.minsupp_count(subset.len());

    let mut group = c.benchmark_group("ablation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200));

    // (a) The supported R-tree bound.
    group.bench_function("search/plain", |b| {
        b.iter(|| black_box(colarm::ops::search(index, &subset).0.len()))
    });
    group.bench_function("search/supported", |b| {
        b.iter(|| black_box(colarm::ops::supported_search(index, &subset, min).0.len()))
    });

    // (b) Differential containment treatment: SS-E-V vs SS-E-U-V.
    for plan in [PlanKind::SsEv, PlanKind::SsEuv] {
        group.bench_function(format!("containment/{}", plan.name()), |b| {
            b.iter(|| {
                black_box(
                    colarm::execute_plan(index, &query, &subset, plan)
                        .expect("runs")
                        .rules
                        .len(),
                )
            })
        });
    }

    // (c) Packing: STR-packed vs insertion-built R-tree search.
    let ins = colarm::MipIndex::build(
        (spec.build)(),
        MipIndexConfig {
            primary_support: spec.primary,
            packing: Packing::Insertion,
            ..Default::default()
        },
    )
    .expect("builds");
    let rect = index.range_rect(&range);
    group.bench_function("packing/str_query", |b| {
        b.iter(|| black_box(index.rtree().query(&rect, 0).0.len()))
    });
    group.bench_function("packing/insertion_query", |b| {
        b.iter(|| black_box(ins.rtree().query(&rect, 0).0.len()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
