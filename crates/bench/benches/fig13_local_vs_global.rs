//! Figure 13 bench: the fresh-local vs repeated-global CFI accounting per
//! focal-subset size (counts printed once; the scan cost benchmarked).

use colarm_bench::{all_specs, build_system, random_subset_spec, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_local_vs_global");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1000));
    for spec in all_specs(Scale::Fast) {
        let system = build_system(&spec);
        let mut rng = StdRng::seed_from_u64(31);
        for &frac in &[0.5f64, 0.1, 0.01] {
            let (_, subset) = random_subset_spec(
                system.index().dataset(),
                system.index().vertical(),
                frac,
                &mut rng,
            );
            if subset.is_empty() {
                continue;
            }
            let counts = colarm::paradox::local_vs_global_cfis(
                system.index(),
                &subset,
                spec.minsupps[0],
                spec.global_minsupp,
            );
            eprintln!(
                "[fig13] {} |DQ|={:.0}%: fresh {} repeated {}",
                spec.name,
                frac * 100.0,
                counts.fresh_local,
                counts.repeated_global
            );
            group.bench_function(format!("{}/dq_{:.0}pct", spec.name, frac * 100.0), |b| {
                b.iter(|| {
                    black_box(colarm::paradox::local_vs_global_cfis(
                        system.index(),
                        &subset,
                        spec.minsupps[0],
                        spec.global_minsupp,
                    ))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
