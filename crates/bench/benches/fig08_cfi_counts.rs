//! Figure 8 bench: closed-frequent-itemset mining time (and counts) by
//! primary threshold for the three benchmark analogs.
//!
//! The `figures fig8` binary prints the full count series; this bench
//! measures the offline CHARM mining cost at each dataset's two most
//! interesting thresholds with statistical rigor.

use colarm_bench::{all_specs, Scale};
use colarm_data::VerticalIndex;
use colarm_mine::vertical::full_vertical;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08_cfi_counts");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for spec in all_specs(Scale::Fast) {
        let dataset = (spec.build)();
        let vertical = VerticalIndex::build(&dataset);
        let columns = full_vertical(&vertical);
        let m = dataset.num_records() as f64;
        // The two ends of the paper's sweep for this dataset.
        for &primary in [spec.fig8_primaries[0], *spec.fig8_primaries.last().unwrap()].iter() {
            let min = ((primary * m).ceil() as usize).max(1);
            let count = colarm_mine::charm(&columns, min).len();
            eprintln!(
                "[fig8] {} primary {:.0}% -> {} CFIs",
                spec.name,
                primary * 100.0,
                count
            );
            group.bench_function(
                format!("{}/primary_{:.0}pct", spec.name, primary * 100.0),
                |b| b.iter(|| black_box(colarm_mine::charm(black_box(&columns), min).len())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
