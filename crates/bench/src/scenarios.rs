//! The three benchmark scenarios (§5 "Experimental datasets") at three
//! scales.
//!
//! The paper indexes UCI chess at primary support 60 %, mushroom at 5 %
//! and PUMSB at 80 %, storing ~300 k / ~10 k / ~450 k closed itemsets. Our
//! synthetic analogs reproduce the *shape* of each dataset (record/item
//! counts, density, CFI explosion curves) but not its exact closed-set
//! counts, so each scenario pins the primary threshold where the analog
//! exhibits the same regime the paper exploited: tens of thousands of
//! prestored itemsets at [`Scale::Full`], ~a thousand at [`Scale::Fast`],
//! and a few hundred at [`Scale::Smoke`] (unit tests / quick benches).
//! The experiment grids (minsupp / minconf / |DQ| fractions) follow the
//! paper exactly.

use colarm::{Colarm, LocalizedQuery, MipIndexConfig};
use colarm_data::synth;
use colarm_data::Dataset;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Experiment scale: trade fidelity for runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-long full sweeps (default for the `figures` binary).
    Full,
    /// Seconds-long sweeps (`--fast`, and the Criterion benches).
    Fast,
    /// Sub-second; unit tests and CI smoke checks.
    Smoke,
}

/// One benchmark dataset plus its experiment grid.
pub struct DatasetSpec {
    /// Dataset name as used in the paper's figures.
    pub name: &'static str,
    /// Builds the dataset (seeded, deterministic).
    pub build: fn() -> Dataset,
    /// Primary support threshold for the MIP-index.
    pub primary: f64,
    /// The minsupp values of the figure's x-axis (paper Figures 9–11).
    pub minsupps: [f64; 3],
    /// The fixed minconf (the paper fixes 85 %).
    pub minconf: f64,
    /// Focal subset sizes as fractions of |D| (charts (a)–(d)).
    pub dq_fracs: [f64; 4],
    /// Primary-threshold sweep for Figure 8 (descending).
    pub fig8_primaries: &'static [f64],
    /// Reference *global* minsupport for Figure 13's fresh-vs-repeated
    /// split (the paper uses 80 % chess / 60 % mushroom / 85 % PUMSB).
    pub global_minsupp: f64,
}

fn chess_small() -> Dataset {
    let mut cfg = synth::chess_config();
    cfg.records /= 8;
    synth::generate(&cfg)
}

fn mushroom_small() -> Dataset {
    let mut cfg = synth::mushroom_config();
    cfg.records /= 8;
    synth::generate(&cfg)
}

fn pumsb_small() -> Dataset {
    synth::pumsb_like_scaled(16)
}

fn pumsb_fast() -> Dataset {
    synth::pumsb_like_scaled(8)
}

/// The chess-analog scenario (paper Figure 9).
pub fn chess_spec(scale: Scale) -> DatasetSpec {
    DatasetSpec {
        name: "chess",
        build: match scale {
            Scale::Smoke => chess_small,
            _ => synth::chess_like,
        },
        primary: match scale {
            Scale::Full => 0.70,
            Scale::Fast => 0.78,
            Scale::Smoke => 0.78,
        },
        minsupps: [0.80, 0.85, 0.90],
        minconf: 0.85,
        dq_fracs: [0.5, 0.2, 0.1, 0.01],
        fig8_primaries: &[0.90, 0.85, 0.80, 0.75, 0.70],
        global_minsupp: 0.80,
    }
}

/// The mushroom-analog scenario (paper Figure 10).
pub fn mushroom_spec(scale: Scale) -> DatasetSpec {
    DatasetSpec {
        name: "mushroom",
        build: match scale {
            Scale::Smoke => mushroom_small,
            _ => synth::mushroom_like,
        },
        primary: match scale {
            Scale::Full => 0.28,
            Scale::Fast => 0.35,
            Scale::Smoke => 0.45,
        },
        minsupps: [0.70, 0.75, 0.80],
        minconf: 0.85,
        dq_fracs: [0.5, 0.2, 0.1, 0.01],
        fig8_primaries: &[0.45, 0.40, 0.35, 0.30],
        global_minsupp: 0.60,
    }
}

/// The PUMSB-analog scenario (paper Figure 11).
pub fn pumsb_spec(scale: Scale) -> DatasetSpec {
    DatasetSpec {
        name: "PUMSB",
        build: match scale {
            Scale::Full => synth::pumsb_like, // scale 4 of the real PUMSB
            Scale::Fast => pumsb_fast,
            Scale::Smoke => pumsb_small,
        },
        primary: match scale {
            Scale::Full => 0.80,
            Scale::Fast => 0.83,
            Scale::Smoke => 0.83,
        },
        minsupps: [0.85, 0.88, 0.91],
        minconf: 0.85,
        dq_fracs: [0.5, 0.2, 0.1, 0.01],
        fig8_primaries: &[0.95, 0.90, 0.85, 0.80],
        global_minsupp: 0.85,
    }
}

/// All three scenarios at one scale.
pub fn all_specs(scale: Scale) -> Vec<DatasetSpec> {
    vec![chess_spec(scale), mushroom_spec(scale), pumsb_spec(scale)]
}

/// Offline phase for a scenario: build the MIP-index and calibrate the
/// cost model on a handful of random sample queries.
pub fn build_system(spec: &DatasetSpec) -> Colarm {
    let dataset = (spec.build)();
    let mut system = Colarm::build(
        dataset,
        MipIndexConfig {
            primary_support: spec.primary,
            ..MipIndexConfig::default()
        },
    )
    .expect("valid scenario config");
    let samples = calibration_queries(&system, spec, 3);
    system.calibrate(&samples).expect("calibration queries are valid");
    system
}

/// A few seeded random calibration queries spanning subset sizes.
pub fn calibration_queries(
    system: &Colarm,
    spec: &DatasetSpec,
    per_size: usize,
) -> Vec<LocalizedQuery> {
    let mut rng = StdRng::seed_from_u64(0xCA11B);
    let mut out = Vec::new();
    for &frac in &[0.3, 0.05] {
        for _ in 0..per_size {
            let (range, subset) = crate::random_subset_spec(
                system.index().dataset(),
                system.index().vertical(),
                frac,
                &mut rng,
            );
            if subset.is_empty() {
                continue;
            }
            out.push(
                LocalizedQuery::builder()
                    .range(range)
                    .minsupp(spec.minsupps[1])
                    .minconf(spec.minconf)
                    .build().expect("valid scenario query"),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_consistent() {
        for scale in [Scale::Smoke, Scale::Fast, Scale::Full] {
            for spec in all_specs(scale) {
                assert!(spec.primary > 0.0 && spec.primary < 1.0);
                // minsupp values sit above the primary threshold so local
                // freshness is possible.
                for &m in &spec.minsupps {
                    assert!(m > spec.primary, "{} at {scale:?}", spec.name);
                }
                assert!(spec.fig8_primaries.windows(2).all(|w| w[0] > w[1]));
            }
        }
    }

    #[test]
    fn smoke_systems_build_and_answer() {
        for spec in all_specs(Scale::Smoke) {
            let system = build_system(&spec);
            assert!(system.index().num_mips() > 0, "{}", spec.name);
        }
    }
}
