//! Shared experiment machinery for the COLARM benchmark harness.
//!
//! Everything the paper's evaluation (§5) needs is defined once here and
//! reused by both the Criterion benches (`benches/`) and the `figures`
//! binary that regenerates each figure/table as text series:
//!
//! * [`DatasetSpec`] — the three benchmark datasets (chess / mushroom /
//!   PUMSB analogs; see DESIGN.md for the substitution rationale) with the
//!   primary thresholds and experiment grids adapted to the analogs'
//!   density.
//! * [`random_subset_spec`] — seeded generation of focal subsets of a
//!   target size fraction "over different regions of the dataset", as the
//!   paper averages over.
//! * [`run_plan_grid`] — the Figures 9–11 measurement loop: average
//!   execution time of all six plans per (|DQ|, minsupp) cell, plus the
//!   optimizer's choice per cell.
//! * [`GridCell`] / [`gains_vs_sev`] / [`optimizer_accuracy`] — the
//!   derived Figure 12 and §5.1 statistics.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod scenarios;

pub use scenarios::*;

use colarm::{Colarm, LocalizedQuery, PlanKind};
use colarm_data::{Dataset, FocalSubset, RangeSpec, VerticalIndex};
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::Serialize;
use std::time::Duration;

/// One measured cell of the Figures 9–11 grids.
#[derive(Debug, Clone, Serialize)]
pub struct GridCell {
    /// Dataset name.
    pub dataset: String,
    /// Target focal-subset fraction (e.g. 0.5 for "50 % of D").
    pub dq_frac: f64,
    /// Actual average subset fraction achieved by the random specs.
    pub actual_frac: f64,
    /// Local minimum support.
    pub minsupp: f64,
    /// Local minimum confidence.
    pub minconf: f64,
    /// Average execution seconds per plan, in [`PlanKind::ALL`] order.
    pub avg_secs: [f64; 6],
    /// How often the optimizer chose each plan, in [`PlanKind::ALL`] order.
    pub chosen: [usize; 6],
    /// Number of random subsets averaged over.
    pub runs: usize,
    /// Average number of rules returned.
    pub avg_rules: f64,
}

impl GridCell {
    /// The plan that was actually fastest on average.
    pub fn fastest_plan(&self) -> PlanKind {
        let (idx, _) = self
            .avg_secs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("six plans");
        PlanKind::ALL[idx]
    }

    /// The plan the optimizer picked most often.
    pub fn optimizer_plan(&self) -> PlanKind {
        let (idx, _) = self
            .chosen
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .expect("six plans");
        PlanKind::ALL[idx]
    }

    /// Regret of the optimizer's majority pick vs the fastest plan
    /// (`0.0` when it picked the fastest).
    pub fn regret(&self) -> f64 {
        let best = self.avg_secs[plan_index(self.fastest_plan())];
        let picked = self.avg_secs[plan_index(self.optimizer_plan())];
        if best <= 0.0 {
            0.0
        } else {
            (picked - best) / best
        }
    }
}

/// Index of a plan within [`PlanKind::ALL`].
pub fn plan_index(plan: PlanKind) -> usize {
    PlanKind::ALL
        .iter()
        .position(|&p| p == plan)
        .expect("plan in ALL")
}

/// Generate a random focal-subset spec of approximately `target_frac` of
/// the dataset: starting unconstrained, repeatedly drop one admissible
/// value from a random attribute, undoing steps that overshoot.
pub fn random_subset_spec(
    dataset: &Dataset,
    vertical: &VerticalIndex,
    target_frac: f64,
    rng: &mut StdRng,
) -> (RangeSpec, FocalSubset) {
    let schema = dataset.schema();
    let n = schema.num_attributes();
    let mut spec = RangeSpec::all();
    let mut subset =
        FocalSubset::resolve(spec.clone(), dataset, vertical).expect("all-range resolves");
    let mut stall = 0usize;
    while subset.fraction() > target_frac && stall < 8 * n {
        let aid = colarm_data::AttributeId(rng.gen_range(0..n) as u16);
        let dom = schema.attribute(aid).domain_size();
        let current: Vec<u16> = match spec.selections().get(&aid) {
            Some(s) => s.iter().copied().collect(),
            None => (0..dom as u16).collect(),
        };
        if current.len() <= 1 {
            stall += 1;
            continue;
        }
        let drop = current[rng.gen_range(0..current.len())];
        let next: Vec<u16> = current.into_iter().filter(|&v| v != drop).collect();
        let candidate_spec = spec.clone().with(aid, next);
        let candidate =
            FocalSubset::resolve(candidate_spec.clone(), dataset, vertical).expect("valid spec");
        // Accept unless we overshoot far below the target or empty out.
        if candidate.fraction() >= target_frac * 0.4 && !candidate.is_empty() {
            spec = candidate_spec;
            subset = candidate;
            stall = 0;
        } else if candidate.fraction() > 0.0 && subset.fraction() > target_frac * 3.0 {
            // Still far above target: accept even an aggressive cut.
            spec = candidate_spec;
            subset = candidate;
            stall = 0;
        } else {
            stall += 1;
        }
    }
    (spec, subset)
}

/// Measure all six plans over `runs` random subsets of `dq_frac`, at one
/// (minsupp, minconf) setting — one cell of Figures 9–11.
pub fn measure_cell(
    system: &Colarm,
    dataset_name: &str,
    dq_frac: f64,
    minsupp: f64,
    minconf: f64,
    runs: usize,
    seed: u64,
) -> GridCell {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut totals = [Duration::ZERO; 6];
    let mut chosen = [0usize; 6];
    let mut actual_frac_sum = 0.0;
    let mut rules_sum = 0usize;
    let mut completed = 0usize;
    while completed < runs {
        let (spec, subset) = random_subset_spec(
            system.index().dataset(),
            system.index().vertical(),
            dq_frac,
            &mut rng,
        );
        if subset.is_empty() {
            continue;
        }
        let query = LocalizedQuery::builder()
            .range(spec)
            .minsupp(minsupp)
            .minconf(minconf)
            .build().expect("valid query");
        let choice = system.optimizer().choose(system.index(), &query, &subset);
        chosen[plan_index(choice.chosen)] += 1;
        let mut reference: Option<Vec<colarm::mine::Rule>> = None;
        for (i, &plan) in PlanKind::ALL.iter().enumerate() {
            let answer = colarm::execute_plan(system.index(), &query, &subset, plan)
                .expect("valid query");
            totals[i] += answer.trace.total;
            match &reference {
                None => {
                    rules_sum += answer.rules.len();
                    reference = Some(answer.rules);
                }
                Some(r) => {
                    assert_eq!(&answer.rules, r, "plan {plan} diverged on {dataset_name}")
                }
            }
        }
        actual_frac_sum += subset.fraction();
        completed += 1;
    }
    let avg_secs = std::array::from_fn(|i| totals[i].as_secs_f64() / completed.max(1) as f64);
    GridCell {
        dataset: dataset_name.to_string(),
        dq_frac,
        actual_frac: actual_frac_sum / completed.max(1) as f64,
        minsupp,
        minconf,
        avg_secs,
        chosen,
        runs: completed,
        avg_rules: rules_sum as f64 / completed.max(1) as f64,
    }
}

/// The Figures 9–11 grid for one dataset: every (|DQ|, minsupp) cell.
pub fn run_plan_grid(
    system: &Colarm,
    spec: &DatasetSpec,
    runs_per_cell: usize,
    seed: u64,
) -> Vec<GridCell> {
    let mut cells = Vec::new();
    for (si, &dq_frac) in spec.dq_fracs.iter().enumerate() {
        for (mi, &minsupp) in spec.minsupps.iter().enumerate() {
            cells.push(measure_cell(
                system,
                spec.name,
                dq_frac,
                minsupp,
                spec.minconf,
                runs_per_cell,
                seed ^ ((si as u64) << 32) ^ (mi as u64),
            ));
        }
    }
    cells
}

/// Figure 12: percentage gain of each optimized plan vs the basic S-E-V,
/// averaged over a set of grid cells: `(t_SEV − t_P) / t_SEV × 100`.
pub fn gains_vs_sev(cells: &[GridCell]) -> [f64; 6] {
    let mut gains = [0.0f64; 6];
    if cells.is_empty() {
        return gains;
    }
    for cell in cells {
        let sev = cell.avg_secs[plan_index(PlanKind::Sev)];
        for (i, &t) in cell.avg_secs.iter().enumerate() {
            if sev > 0.0 {
                gains[i] += (sev - t) / sev * 100.0;
            }
        }
    }
    for g in &mut gains {
        *g /= cells.len() as f64;
    }
    gains
}

/// §5.1 optimizer-accuracy summary over a set of cells.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AccuracySummary {
    /// Fraction of cells where the optimizer's majority pick was exactly
    /// the measured-fastest plan.
    pub exact: f64,
    /// Fraction of cells where the pick cost at most 10 % more than the
    /// fastest plan (the paper's "at most 5 % extra cost" framing; several
    /// of our index plans are near-ties, so exact argmin over-penalizes
    /// measurement noise).
    pub within_10pct: f64,
    /// Mean regret across all cells.
    pub mean_regret: f64,
    /// Worst regret of any erroneous pick.
    pub worst_regret: f64,
    /// Number of cells summarized.
    pub cells: usize,
}

/// Compute the §5.1 accuracy summary.
pub fn optimizer_accuracy(cells: &[GridCell]) -> AccuracySummary {
    let mut exact = 0usize;
    let mut within = 0usize;
    let mut regret_sum = 0.0f64;
    let mut worst_regret = 0.0f64;
    for cell in cells {
        let r = cell.regret();
        regret_sum += r;
        worst_regret = worst_regret.max(r);
        if cell.optimizer_plan() == cell.fastest_plan() {
            exact += 1;
        }
        if r <= 0.10 {
            within += 1;
        }
    }
    let n = cells.len().max(1) as f64;
    AccuracySummary {
        exact: exact as f64 / n,
        within_10pct: within as f64 / n,
        mean_regret: regret_sum / n,
        worst_regret,
        cells: cells.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_subsets_hit_target_fractions() {
        let spec = mushroom_spec(Scale::Smoke);
        let dataset = (spec.build)();
        let vertical = VerticalIndex::build(&dataset);
        let mut rng = StdRng::seed_from_u64(7);
        for target in [0.5, 0.2, 0.05] {
            let (range, subset) = random_subset_spec(&dataset, &vertical, target, &mut rng);
            assert!(!subset.is_empty());
            assert!(
                subset.fraction() <= target * 3.5,
                "target {target} got {}",
                subset.fraction()
            );
            range.validate(dataset.schema()).unwrap();
        }
    }

    #[test]
    fn grid_cell_statistics_work() {
        let cell = GridCell {
            dataset: "x".into(),
            dq_frac: 0.2,
            actual_frac: 0.21,
            minsupp: 0.8,
            minconf: 0.85,
            avg_secs: [6.0, 5.0, 4.0, 3.0, 2.0, 10.0],
            chosen: [0, 0, 0, 0, 3, 0],
            runs: 3,
            avg_rules: 12.0,
        };
        assert_eq!(cell.fastest_plan(), PlanKind::SsEuv);
        assert_eq!(cell.optimizer_plan(), PlanKind::SsEuv);
        assert_eq!(cell.regret(), 0.0);
        let gains = gains_vs_sev(std::slice::from_ref(&cell));
        assert_eq!(gains[plan_index(PlanKind::Sev)], 0.0);
        assert!((gains[plan_index(PlanKind::SsEuv)] - (6.0 - 2.0) / 6.0 * 100.0).abs() < 1e-9);
        let acc = optimizer_accuracy(std::slice::from_ref(&cell));
        assert_eq!(acc.exact, 1.0);
        assert_eq!(acc.within_10pct, 1.0);
        assert_eq!(acc.worst_regret, 0.0);
        assert_eq!(acc.cells, 1);
    }

    #[test]
    fn measure_cell_runs_end_to_end_on_smoke_scale() {
        let spec = mushroom_spec(Scale::Smoke);
        let system = build_system(&spec);
        let cell = measure_cell(&system, spec.name, 0.3, spec.minsupps[0], spec.minconf, 2, 3);
        assert_eq!(cell.runs, 2);
        assert!(cell.avg_secs.iter().all(|&t| t >= 0.0));
        assert_eq!(cell.chosen.iter().sum::<usize>(), 2);
    }
}
