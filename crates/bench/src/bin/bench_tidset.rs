//! Chunked tidset-kernel microbenchmark: measures `intersect_count`
//! across container pairings against two baselines and writes the
//! numbers plus per-scenario acceptance thresholds to `BENCH_tidset.json`.
//!
//! ```text
//! cargo run --release --bin bench_tidset [-- OUT.json] [--check]
//! ```
//!
//! Baselines:
//!
//! * **seed** — the pre-PR-1 sorted-vec merge / gallop kernels, kept for
//!   the original five scenarios so their history stays comparable.
//! * **PR 1 hybrid** — a faithful replica of the two-kind whole-set
//!   representation this PR replaced (bitmap when `len × 16 ≥ span` and
//!   `len ≥ 64`, else sorted vec; same kernels, same gallop ratio). The
//!   three container scenarios measure against it, on exactly the shapes
//!   its single global density rule mispredicts.
//!
//! Every scenario carries a `min_speedup` threshold; the run exits
//! nonzero if any measured speedup lands below its threshold, which is
//! the hard gate `scripts/ci.sh --bench` relies on. `--check` verifies
//! without rewriting the committed JSON.

use colarm_data::Tidset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

const UNIVERSE: u32 = 100_000;
/// Universe of the clustered scenario: big enough that 64k clusters are
/// a rounding error of global density.
const CLUSTER_UNIVERSE: u32 = 1 << 22;
const RUNS_UNIVERSE: u32 = 1 << 20;
const MIXED_UNIVERSE: u32 = 1 << 21;

#[derive(Serialize)]
struct Acceptance {
    dense_x_dense_min_speedup: f64,
    sparse_gallop_max_regression: f64,
    container_scenarios_min_speedup: f64,
}

#[derive(Serialize)]
struct Scenario {
    name: &'static str,
    universe: u32,
    len_a: usize,
    len_b: usize,
    chunked_ns: f64,
    baseline: &'static str,
    baseline_ns: f64,
    speedup: f64,
    min_speedup: f64,
}

#[derive(Serialize)]
struct Report {
    description: &'static str,
    harness: &'static str,
    acceptance: Acceptance,
    scenarios: Vec<Scenario>,
}

// ---------------------------------------------------------------------------
// Seed baseline: plain sorted-vec kernels (pre-PR-1).
// ---------------------------------------------------------------------------

/// The seed's merge intersection count over plain sorted vecs.
fn merge_count(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// The seed's galloping intersection count (small list probes big list).
fn gallop_count(small: &[u32], big: &[u32]) -> usize {
    let mut lo = 0usize;
    let mut n = 0usize;
    for &x in small {
        let mut hi = lo + 1;
        while hi < big.len() && big[hi] <= x {
            lo = hi;
            hi = (hi * 2).min(big.len());
        }
        let hi = hi.min(big.len());
        let idx = lo + big[lo..hi].partition_point(|&y| y < x);
        if idx < big.len() && big[idx] == x {
            n += 1;
        }
        lo = idx.min(big.len().saturating_sub(1));
    }
    n
}

// ---------------------------------------------------------------------------
// PR 1 baseline: replica of the retired two-kind sparse/dense hybrid.
// Thresholds and kernels match the removed `Repr::{Sparse, Dense}` code.
// ---------------------------------------------------------------------------

const PR1_DENSE_RATIO: usize = 16;
const PR1_DENSE_MIN_LEN: usize = 64;
const PR1_GALLOP_RATIO: usize = 16;

enum Pr1Hybrid {
    Sparse(Vec<u32>),
    Dense(Vec<u64>),
}

impl Pr1Hybrid {
    fn build(ids: Vec<u32>) -> Pr1Hybrid {
        let span = ids.last().map_or(0, |&t| t as usize + 1);
        if ids.len() >= PR1_DENSE_MIN_LEN && ids.len() * PR1_DENSE_RATIO >= span {
            let mut words = vec![0u64; span.div_ceil(64)];
            for &t in &ids {
                words[t as usize / 64] |= 1u64 << (t % 64);
            }
            Pr1Hybrid::Dense(words)
        } else {
            Pr1Hybrid::Sparse(ids)
        }
    }

    fn is_dense(&self) -> bool {
        matches!(self, Pr1Hybrid::Dense(_))
    }

    fn intersect_count(&self, other: &Pr1Hybrid) -> usize {
        fn test_bit(words: &[u64], t: u32) -> bool {
            words
                .get(t as usize / 64)
                .is_some_and(|w| w & (1u64 << (t % 64)) != 0)
        }
        match (self, other) {
            (Pr1Hybrid::Sparse(a), Pr1Hybrid::Sparse(b)) => {
                let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
                if small.is_empty() {
                    return 0;
                }
                if large.len() / small.len() >= PR1_GALLOP_RATIO {
                    gallop_count(small, large)
                } else {
                    merge_count(small, large)
                }
            }
            (Pr1Hybrid::Sparse(s), Pr1Hybrid::Dense(words))
            | (Pr1Hybrid::Dense(words), Pr1Hybrid::Sparse(s)) => {
                s.iter().filter(|&&t| test_bit(words, t)).count()
            }
            (Pr1Hybrid::Dense(a), Pr1Hybrid::Dense(b)) => a
                .iter()
                .zip(b.iter())
                .map(|(&x, &y)| (x & y).count_ones() as usize)
                .sum(),
        }
    }
}

// ---------------------------------------------------------------------------
// Scenario data.
// ---------------------------------------------------------------------------

fn sample(density: f64, rng: &mut StdRng) -> Tidset {
    Tidset::from_unsorted((0..UNIVERSE).filter(|_| rng.gen_bool(density)))
}

/// Globally sparse, locally clustered: four 32k-wide half-density blobs
/// at megabyte-aligned offsets — 1.6% global density, so PR 1 keeps a
/// sorted vec and probes per id, while the chunked kernel word-ANDs the
/// four bitmap chunks the blobs occupy.
fn clustered_ids() -> Vec<u32> {
    (0..4u32)
        .flat_map(|c| {
            let start = c * (1 << 20);
            (start..start + 32_768).step_by(2)
        })
        .collect()
}

/// 90%-duty interval pattern: `t mod p < 0.9p`. Dense enough that PR 1
/// builds a whole-universe bitmap; the chunked kernel stores a handful of
/// runs per chunk and intersects interval boundaries instead of words.
fn duty_ids(universe: u32, period: u32, offset: u32) -> Vec<u32> {
    (0..universe)
        .filter(|t| (t + offset) % period < period / 10 * 9)
        .collect()
}

/// One bitmap chunk + sixteen run chunks + a scattered-array tail: every
/// container kind in one set. Globally ~47% dense, so PR 1 word-ANDs the
/// full 2M-tid span; the chunked kernel dispatches per-chunk kernels and
/// touches two orders of magnitude fewer words.
fn mixed_ids(bitmap_step: usize, runs_offset: u32, array_step: usize) -> Vec<u32> {
    let bitmap = (0..65_536u32).step_by(bitmap_step);
    let runs = (65_536..1_114_112u32).filter(move |t| (t + runs_offset) % 1_000 < 900);
    let tail = (1_114_112..MIXED_UNIVERSE).step_by(array_step);
    bitmap.chain(runs).chain(tail).collect()
}

/// Median of `reps` timings of `f`, in nanoseconds per call.
fn time_ns<F: FnMut() -> usize>(mut f: F) -> f64 {
    // Warm up and pick an iteration count that runs ≥ ~1ms per rep.
    let start = Instant::now();
    black_box(f());
    let once = start.elapsed().as_nanos().max(1);
    let iters = (1_000_000 / once).clamp(1, 100_000) as usize;
    let mut samples: Vec<f64> = (0..9)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let mut out_path = "BENCH_tidset.json".to_string();
    let mut check_only = false;
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check_only = true;
        } else {
            out_path = arg;
        }
    }

    let mut rng = StdRng::seed_from_u64(0xBE7C);
    let dense10 = sample(0.10, &mut rng);
    let dense30 = sample(0.30, &mut rng);
    let dense50 = sample(0.50, &mut rng);
    let sparse_tiny = sample(0.0005, &mut rng);
    let sparse_mid = sample(0.02, &mut rng);
    let (v10, v30, v50) = (dense10.to_vec(), dense30.to_vec(), dense50.to_vec());
    let (v_tiny, v_mid) = (sparse_tiny.to_vec(), sparse_mid.to_vec());

    let mut scenarios = Vec::new();
    let mut push = |name,
                    universe,
                    a: &Tidset,
                    b: &Tidset,
                    baseline: &'static str,
                    base_ns: f64,
                    base_count: usize,
                    min_speedup: f64| {
        assert_eq!(
            a.intersect_count(b),
            base_count,
            "{name}: chunked and baseline kernels disagree"
        );
        let chunked_ns = time_ns(|| a.intersect_count(b));
        scenarios.push(Scenario {
            name,
            universe,
            len_a: a.len(),
            len_b: b.len(),
            chunked_ns,
            baseline,
            baseline_ns: base_ns,
            speedup: base_ns / chunked_ns,
            min_speedup,
        });
    };

    // Original five scenarios against the seed's sorted-vec kernels.
    push(
        "dense10_x_dense10",
        UNIVERSE,
        &dense10,
        &dense10.clone(),
        "sorted-vec merge",
        time_ns(|| merge_count(&v10, &v10)),
        merge_count(&v10, &v10),
        3.0,
    );
    push(
        "dense10_x_dense50",
        UNIVERSE,
        &dense10,
        &dense50,
        "sorted-vec merge",
        time_ns(|| merge_count(&v10, &v50)),
        merge_count(&v10, &v50),
        3.0,
    );
    push(
        "dense50_x_dense50",
        UNIVERSE,
        &dense50,
        &dense50.clone(),
        "sorted-vec merge",
        time_ns(|| merge_count(&v50, &v50)),
        merge_count(&v50, &v50),
        3.0,
    );
    push(
        "sparse_x_dense30",
        UNIVERSE,
        &sparse_tiny,
        &dense30,
        "sorted-vec gallop",
        time_ns(|| gallop_count(&v_tiny, &v30)),
        gallop_count(&v_tiny, &v30),
        3.0,
    );
    push(
        "sparse_x_sparse_gallop",
        UNIVERSE,
        &sparse_tiny,
        &sparse_mid,
        "sorted-vec gallop",
        time_ns(|| gallop_count(&v_tiny, &v_mid)),
        gallop_count(&v_tiny, &v_mid),
        0.95, // ≤5% regression: this path still runs comparable code.
    );

    // Container scenarios against the PR 1 two-kind hybrid replica, on
    // the shapes its whole-set density rule mispredicts.
    let clustered = clustered_ids();
    let wide_dense: Vec<u32> = (0..CLUSTER_UNIVERSE).step_by(2).collect();
    let a = Tidset::from_sorted(clustered.clone());
    let b = Tidset::from_sorted(wide_dense.clone());
    let pa = Pr1Hybrid::build(clustered);
    let pb = Pr1Hybrid::build(wide_dense);
    assert!(!pa.is_dense(), "clustered set must be PR1-sparse");
    assert!(pb.is_dense(), "wide set must be PR1-dense");
    push(
        "clustered_sparse_x_dense",
        CLUSTER_UNIVERSE,
        &a,
        &b,
        "PR1 hybrid (probe)",
        time_ns(|| pa.intersect_count(&pb)),
        pa.intersect_count(&pb),
        3.0,
    );

    let ra = duty_ids(RUNS_UNIVERSE, 10_000, 0);
    let rb = duty_ids(RUNS_UNIVERSE, 10_000, 5_000);
    let a = Tidset::from_sorted(ra.clone());
    let b = Tidset::from_sorted(rb.clone());
    let pa = Pr1Hybrid::build(ra);
    let pb = Pr1Hybrid::build(rb);
    assert!(pa.is_dense() && pb.is_dense(), "duty sets must be PR1-dense");
    push(
        "runs_x_runs",
        RUNS_UNIVERSE,
        &a,
        &b,
        "PR1 hybrid (word-AND)",
        time_ns(|| pa.intersect_count(&pb)),
        pa.intersect_count(&pb),
        3.0,
    );

    let ma = mixed_ids(2, 0, 2_048);
    let mb = mixed_ids(4, 500, 3_072);
    let a = Tidset::from_sorted(ma.clone());
    let b = Tidset::from_sorted(mb.clone());
    let pa = Pr1Hybrid::build(ma);
    let pb = Pr1Hybrid::build(mb);
    assert!(pa.is_dense() && pb.is_dense(), "mixed sets must be PR1-dense");
    push(
        "mixed_chunk_x_mixed_chunk",
        MIXED_UNIVERSE,
        &a,
        &b,
        "PR1 hybrid (word-AND)",
        time_ns(|| pa.intersect_count(&pb)),
        pa.intersect_count(&pb),
        3.0,
    );

    let report = Report {
        description: "Chunked container tidset kernel (array/bitmap/run per \
                      64k chunk) vs the seed's sorted-vec kernels (original \
                      scenarios) and a PR 1 two-kind hybrid replica \
                      (container scenarios), intersect_count medians of 9 reps",
        harness: "cargo run --release --bin bench_tidset [-- OUT.json] [--check]; \
                  every scenario's measured speedup must reach its min_speedup \
                  or the run exits nonzero (the scripts/ci.sh --bench gate)",
        acceptance: Acceptance {
            dense_x_dense_min_speedup: 3.0,
            sparse_gallop_max_regression: 0.05,
            container_scenarios_min_speedup: 3.0,
        },
        scenarios,
    };
    println!(
        "{:<26} {:>9} {:>9} {:>12} {:>12} {:>8} {:>6}",
        "scenario", "|a|", "|b|", "chunked ns", "baseline ns", "speedup", "gate"
    );
    for s in &report.scenarios {
        println!(
            "{:<26} {:>9} {:>9} {:>12.0} {:>12.0} {:>7.1}x {:>5.2}x",
            s.name, s.len_a, s.len_b, s.chunked_ns, s.baseline_ns, s.speedup, s.min_speedup
        );
    }
    if !check_only {
        let json = serde_json::to_string_pretty(&report).expect("serializable");
        std::fs::write(&out_path, json).expect("write BENCH_tidset.json");
        println!("\nwrote {out_path}");
    }
    let failures: Vec<String> = report
        .scenarios
        .iter()
        .filter(|s| s.speedup < s.min_speedup)
        .map(|s| format!("{}: {:.2}x < required {:.2}x", s.name, s.speedup, s.min_speedup))
        .collect();
    if !failures.is_empty() {
        eprintln!("\nbench gate FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("bench gate: all {} scenarios green", report.scenarios.len());
}
