//! Hybrid tidset-kernel microbenchmark: measures `intersect_count` across
//! representation pairs on a 100k-tid universe against the seed's
//! sorted-vec baselines (merge for balanced pairs, galloping probes for
//! skewed ones) and writes the numbers to `BENCH_tidset.json`.
//!
//! ```text
//! cargo run --release --bin bench_tidset [-- OUT.json]
//! ```
//!
//! The acceptance gates this file documents: ≥3× on dense×dense at
//! density ≥10%, and no >5% regression on the sparse gallop path (which
//! still runs the seed's code).

use colarm_data::Tidset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

const UNIVERSE: u32 = 100_000;

#[derive(Serialize)]
struct Scenario {
    name: &'static str,
    universe: u32,
    len_a: usize,
    len_b: usize,
    hybrid_ns: f64,
    baseline: &'static str,
    baseline_ns: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Report {
    description: &'static str,
    scenarios: Vec<Scenario>,
}

fn sample(density: f64, rng: &mut StdRng) -> Tidset {
    Tidset::from_unsorted((0..UNIVERSE).filter(|_| rng.gen_bool(density)))
}

/// The seed's merge intersection count over plain sorted vecs.
fn merge_count(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// The seed's galloping intersection count (small list probes big list).
fn gallop_count(small: &[u32], big: &[u32]) -> usize {
    let mut lo = 0usize;
    let mut n = 0usize;
    for &x in small {
        let mut hi = lo + 1;
        while hi < big.len() && big[hi] <= x {
            lo = hi;
            hi = (hi * 2).min(big.len());
        }
        let hi = hi.min(big.len());
        let idx = lo + big[lo..hi].partition_point(|&y| y < x);
        if idx < big.len() && big[idx] == x {
            n += 1;
        }
        lo = idx.min(big.len().saturating_sub(1));
    }
    n
}

/// Median of `reps` timings of `f`, in nanoseconds per call.
fn time_ns<F: FnMut() -> usize>(mut f: F) -> f64 {
    // Warm up and pick an iteration count that runs ≥ ~1ms per rep.
    let start = Instant::now();
    black_box(f());
    let once = start.elapsed().as_nanos().max(1);
    let iters = (1_000_000 / once).clamp(1, 100_000) as usize;
    let mut samples: Vec<f64> = (0..9)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_tidset.json".to_string());
    let mut rng = StdRng::seed_from_u64(0xBE7C);
    let dense10 = sample(0.10, &mut rng);
    let dense30 = sample(0.30, &mut rng);
    let dense50 = sample(0.50, &mut rng);
    let sparse_tiny = sample(0.0005, &mut rng);
    let sparse_mid = sample(0.02, &mut rng);
    let (v10, v30, v50) = (dense10.to_vec(), dense30.to_vec(), dense50.to_vec());
    let (v_tiny, v_mid) = (sparse_tiny.to_vec(), sparse_mid.to_vec());

    let mut scenarios = Vec::new();
    let mut push = |name, a: &Tidset, b: &Tidset, baseline: &'static str, base_ns: f64| {
        let hybrid_ns = time_ns(|| a.intersect_count(b));
        scenarios.push(Scenario {
            name,
            universe: UNIVERSE,
            len_a: a.len(),
            len_b: b.len(),
            hybrid_ns,
            baseline,
            baseline_ns: base_ns,
            speedup: base_ns / hybrid_ns,
        });
    };

    push(
        "dense10_x_dense10",
        &dense10,
        &dense10.clone(),
        "sorted-vec merge",
        time_ns(|| merge_count(&v10, &v10)),
    );
    push(
        "dense10_x_dense50",
        &dense10,
        &dense50,
        "sorted-vec merge",
        time_ns(|| merge_count(&v10, &v50)),
    );
    push(
        "dense50_x_dense50",
        &dense50,
        &dense50.clone(),
        "sorted-vec merge",
        time_ns(|| merge_count(&v50, &v50)),
    );
    push(
        "sparse_x_dense30",
        &sparse_tiny,
        &dense30,
        "sorted-vec gallop",
        time_ns(|| gallop_count(&v_tiny, &v30)),
    );
    push(
        "sparse_x_sparse_gallop",
        &sparse_tiny,
        &sparse_mid,
        "sorted-vec gallop",
        time_ns(|| gallop_count(&v_tiny, &v_mid)),
    );

    let report = Report {
        description: "Hybrid bitmap/sorted-vec tidset kernel vs the seed's \
                      sorted-vec intersection, intersect_count on a 100k-tid \
                      universe (median of 9 reps)",
        scenarios,
    };
    println!(
        "{:<26} {:>9} {:>9} {:>12} {:>12} {:>8}",
        "scenario", "|a|", "|b|", "hybrid ns", "baseline ns", "speedup"
    );
    for s in &report.scenarios {
        println!(
            "{:<26} {:>9} {:>9} {:>12.0} {:>12.0} {:>7.1}x",
            s.name, s.len_a, s.len_b, s.hybrid_ns, s.baseline_ns, s.speedup
        );
    }
    let json = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write(&out_path, json).expect("write BENCH_tidset.json");
    println!("\nwrote {out_path}");
}
