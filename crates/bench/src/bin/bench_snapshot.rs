//! Snapshot-format benchmark: the versioned binary snapshot
//! (`colarm::save_index` / `colarm::load_index`) against the legacy JSON
//! snapshot (`IndexSnapshot::to_json` / `from_json`), on the Table 1
//! salary dataset and the mushroom analog. Writes `BENCH_snapshot.json`.
//!
//! ```text
//! cargo run --release --bin bench_snapshot [-- OUT.json]
//! ```
//!
//! The acceptance gate this file documents: the binary snapshot is ≥3×
//! smaller on disk and ≥3× faster to load than the JSON snapshot at
//! benchmark scale (the tiny salary fixture is reported for reference;
//! its fixed header overhead dominates at 11 records).

use colarm::{load_index, save_index, Colarm, IndexSnapshot, MipIndex, MipIndexConfig};
use colarm_bench::{build_system, mushroom_spec, Scale};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

#[derive(Serialize)]
struct Scenario {
    name: &'static str,
    records: usize,
    cfis: usize,
    binary_bytes: u64,
    json_bytes: u64,
    size_ratio: f64,
    binary_save_s: f64,
    json_save_s: f64,
    binary_load_s: f64,
    json_load_s: f64,
    load_speedup: f64,
}

#[derive(Serialize)]
struct Report {
    description: &'static str,
    scenarios: Vec<Scenario>,
}

/// Best of `reps` wall-clock timings of `f`.
fn best_of<T, F: FnMut() -> T>(reps: usize, mut f: F) -> f64 {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn bench(name: &'static str, index: &MipIndex) -> Scenario {
    let dir = std::env::temp_dir().join(format!("colarm-bench-snapshot-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let bin_path = dir.join(format!("{name}.snap"));
    let json_path = dir.join(format!("{name}.json"));

    let binary_save_s = best_of(5, || save_index(index, &bin_path).expect("binary save"));
    let binary_bytes = std::fs::metadata(&bin_path).expect("metadata").len();
    let json_save_s = best_of(5, || {
        let json = IndexSnapshot::capture(index).to_json().expect("json");
        std::fs::write(&json_path, json).expect("json save");
    });
    let json_bytes = std::fs::metadata(&json_path).expect("metadata").len();

    let binary_load_s = best_of(5, || load_index(&bin_path).expect("binary load"));
    let json_load_s = best_of(5, || {
        let text = std::fs::read_to_string(&json_path).expect("json read");
        IndexSnapshot::from_json(&text)
            .expect("json parse")
            .restore()
            .expect("restore")
    });

    // Sanity: both paths restore the same catalog.
    assert_eq!(load_index(&bin_path).expect("load").num_mips(), index.num_mips());
    let _ = std::fs::remove_dir_all(&dir);

    Scenario {
        name,
        records: index.dataset().num_records(),
        cfis: index.num_mips(),
        binary_bytes,
        json_bytes,
        size_ratio: json_bytes as f64 / binary_bytes as f64,
        binary_save_s,
        json_save_s,
        binary_load_s,
        json_load_s,
        load_speedup: json_load_s / binary_load_s,
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_snapshot.json".to_string());

    let salary = MipIndex::build(
        colarm_data::synth::salary(),
        MipIndexConfig {
            primary_support: 2.0 / 11.0,
            ..Default::default()
        },
    )
    .expect("salary index");

    let mushroom: Colarm = build_system(&mushroom_spec(Scale::Fast));

    let report = Report {
        description: "Versioned binary snapshot (save_index/load_index) vs the \
                      legacy JSON snapshot (IndexSnapshot::to_json/from_json), \
                      through real files (best of 5 reps)",
        scenarios: vec![
            bench("salary_table1", &salary),
            bench("mushroom_fast", mushroom.index()),
        ],
    };

    println!(
        "{:<16} {:>8} {:>6} {:>12} {:>12} {:>6} {:>12} {:>12} {:>8}",
        "scenario", "records", "cfis", "bin bytes", "json bytes", "ratio", "bin load s", "json load s",
        "speedup"
    );
    for s in &report.scenarios {
        println!(
            "{:<16} {:>8} {:>6} {:>12} {:>12} {:>5.1}x {:>12.4} {:>12.4} {:>7.1}x",
            s.name,
            s.records,
            s.cfis,
            s.binary_bytes,
            s.json_bytes,
            s.size_ratio,
            s.binary_load_s,
            s.json_load_s,
            s.load_speedup
        );
    }
    let json = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write(&out_path, json).expect("write BENCH_snapshot.json");
    println!("\nwrote {out_path}");
}
