//! Cold-start benchmark: **time-to-first-query** (TTFQ) for the three
//! snapshot restore paths at production scale (hundreds of thousands of
//! records). Writes `BENCH_coldstart.json`.
//!
//! ```text
//! cargo run --release --bin bench_coldstart [-- OUT.json] [--check]
//! ```
//!
//! Contenders, all restoring the *same* index:
//!
//! * **owned** — the framed v3 stream (`save_index_v3_with_constants`):
//!   varint-decodes every record, allocates every row, materializes every
//!   tidset container and rebuilds the vertical index before the first
//!   query can run.
//! * **mmap-lazy** — the aligned v4 layout through `mmap` with
//!   [`ValidationMode::Lazy`]: structural checks + header CRC up front,
//!   bulk-section CRCs deferred to the first query; records and tidset
//!   payloads are borrowed views into the mapping.
//! * **mmap-eager** — same mapping, but every section CRC is verified
//!   before `load` returns (`--validate eager` on the CLI).
//!
//! The acceptance floor this file records (`min_ttfq_speedup`): mmap-lazy
//! TTFQ must be ≥10× faster than owned decode at this scale. `--check`
//! re-measures and exits nonzero below the floor without rewriting the
//! committed JSON — the hard-gate pattern `scripts/ci.sh --bench` relies
//! on. The first-query answers of all three contenders are asserted
//! bit-identical on every run, gate or not.

use colarm::data::synth::{generate, SynthConfig};
use colarm::{
    Colarm, LocalizedQuery, MipIndex, MipIndexConfig, QueryOutcome, QueryRequest, ValidationMode,
};
use serde::Serialize;
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

/// ≥200k records — big enough that the owned decoder's per-record work
/// dominates, with a primary threshold keeping the CFI catalog (and the
/// assemble cost every contender pays) moderate.
const RECORDS: usize = 480_000;

#[derive(Serialize)]
struct Contender {
    name: &'static str,
    /// Snapshot size on disk.
    bytes: u64,
    /// `load` returning, best of reps (seconds).
    load_s: f64,
    /// `load` + first optimized query answered, best of reps (seconds).
    ttfq_s: f64,
}

#[derive(Serialize)]
struct Report {
    description: &'static str,
    records: usize,
    arity: usize,
    cfis: usize,
    reps: usize,
    contenders: Vec<Contender>,
    /// owned TTFQ / mmap-lazy TTFQ.
    ttfq_speedup_lazy: f64,
    /// owned TTFQ / mmap-eager TTFQ (informational, no floor).
    ttfq_speedup_eager: f64,
    /// Acceptance floor on `ttfq_speedup_lazy` (hard gate).
    min_ttfq_speedup: f64,
    harness: &'static str,
}

fn dataset() -> colarm::data::Dataset {
    generate(&SynthConfig {
        name: "coldstart".into(),
        seed: 4242,
        records: RECORDS,
        domains: vec![3, 3, 3, 3, 4, 4, 4, 4, 2, 2, 2, 2, 3, 3, 3, 3],
        top_mass: 0.7,
        skew: 1.2,
        clusters: 3,
        cluster_focus: 0.4,
        focus_strength: 0.8,
        templates: 5,
        template_len: 4,
        template_prob: 0.25,
    })
}

/// Best of `reps` wall-clock timings of `f`.
fn best_of<T, F: FnMut() -> T>(reps: usize, mut f: F) -> f64 {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// The cold-start query: a narrow three-attribute focal range, the shape
/// a drill-down session opens with.
fn first_query(schema: &colarm::data::Schema) -> LocalizedQuery {
    LocalizedQuery::builder()
        .range_named(schema, "a0", &["v2"])
        .unwrap()
        .range_named(schema, "a4", &["v3"])
        .unwrap()
        .range_named(schema, "a12", &["v2"])
        .unwrap()
        .minsupp(0.25)
        .minconf(0.5)
        .build()
        .unwrap()
}

/// Load `path` with `mode` and answer the first query through the full
/// optimizer path — the server's cold-start sequence.
fn load_and_query(path: &Path, mode: ValidationMode, query: &LocalizedQuery) -> QueryOutcome {
    let sys = Colarm::load_index_snapshot_with(path, mode).expect("snapshot loads");
    sys.run(&QueryRequest::query(query)).expect("first query answers")
}

fn main() {
    let mut out_path = "BENCH_coldstart.json".to_string();
    let mut check_only = false;
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check_only = true;
        } else {
            out_path = arg;
        }
    }

    eprintln!("building {RECORDS}-record index (one-time) ...");
    let index = MipIndex::build(
        dataset(),
        MipIndexConfig {
            primary_support: 0.50,
            ..Default::default()
        },
    )
    .expect("index builds");
    let cfis = index.num_mips();
    let arity = index.dataset().schema().num_attributes();
    assert!(cfis > 0, "degenerate scenario: no CFIs");
    let query = first_query(index.dataset().schema());

    let dir = std::env::temp_dir().join(format!("colarm-bench-coldstart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let v3_path = dir.join("coldstart_v3.snap");
    let v4_path = dir.join("coldstart_v4.snap");
    let constants = colarm::cost::CostConstants::default();
    colarm::save_index_v3_with_constants(&index, constants, &v3_path).expect("v3 save");
    colarm::save_index(&index, &v4_path).expect("v4 save");
    let v3_bytes = std::fs::metadata(&v3_path).expect("metadata").len();
    let v4_bytes = std::fs::metadata(&v4_path).expect("metadata").len();

    // Correctness first: all three restore paths answer the first query
    // bit-identically (rules, executed plan, subset size).
    let owned_out = load_and_query(&v3_path, ValidationMode::Eager, &query);
    for (name, mode) in [("mmap-lazy", ValidationMode::Lazy), ("mmap-eager", ValidationMode::Eager)]
    {
        let out = load_and_query(&v4_path, mode, &query);
        assert_eq!(out.rules, owned_out.rules, "{name} first-query rules diverged");
        assert_eq!(out.plan, owned_out.plan, "{name} plan choice diverged");
        assert_eq!(out.subset_size, owned_out.subset_size, "{name} |DQ| diverged");
    }

    if std::env::var_os("COLDSTART_DEBUG").is_some() {
        let t = Instant::now();
        let sys = Colarm::load_index_snapshot_with(&v4_path, ValidationMode::Lazy).unwrap();
        eprintln!("debug lazy load: {:?}", t.elapsed());
        let t = Instant::now();
        let out = sys.run(&QueryRequest::query(&query)).unwrap();
        eprintln!(
            "debug first query: {:?} ({} rules, |DQ|={})",
            t.elapsed(),
            out.rules.len(),
            out.subset_size
        );
        let t = Instant::now();
        let _ = sys.run(&QueryRequest::query(&query)).unwrap();
        eprintln!("debug second query (validated): {:?}", t.elapsed());
    }

    let reps = 5;
    let contenders = vec![
        Contender {
            name: "owned-v3",
            bytes: v3_bytes,
            load_s: best_of(reps, || colarm::load_index(&v3_path).expect("load")),
            ttfq_s: best_of(reps, || load_and_query(&v3_path, ValidationMode::Eager, &query)),
        },
        Contender {
            name: "mmap-lazy",
            bytes: v4_bytes,
            load_s: best_of(reps, || {
                colarm::load_index_with_mode(&v4_path, ValidationMode::Lazy).expect("load")
            }),
            ttfq_s: best_of(reps, || load_and_query(&v4_path, ValidationMode::Lazy, &query)),
        },
        Contender {
            name: "mmap-eager",
            bytes: v4_bytes,
            load_s: best_of(reps, || {
                colarm::load_index_with_mode(&v4_path, ValidationMode::Eager).expect("load")
            }),
            ttfq_s: best_of(reps, || load_and_query(&v4_path, ValidationMode::Eager, &query)),
        },
    ];
    let _ = std::fs::remove_dir_all(&dir);

    let ttfq = |name: &str| {
        contenders
            .iter()
            .find(|c| c.name == name)
            .expect("contender present")
            .ttfq_s
    };
    let report = Report {
        description: "Snapshot cold start at production scale (see `records`): owned \
                      framed-v3 decode vs \
                      zero-copy mmap v4 (lazy and eager CRC validation). TTFQ = load \
                      returning + first optimized query answered; best of 5 reps; \
                      first-query answers asserted bit-identical across contenders.",
        records: RECORDS,
        arity,
        cfis,
        reps,
        ttfq_speedup_lazy: ttfq("owned-v3") / ttfq("mmap-lazy"),
        ttfq_speedup_eager: ttfq("owned-v3") / ttfq("mmap-eager"),
        min_ttfq_speedup: 10.0,
        contenders,
        harness: "cargo run --release --bin bench_coldstart [-- OUT.json] [--check]; \
                  --check enforces min_ttfq_speedup without rewriting the JSON",
    };

    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "contender", "bytes", "load s", "ttfq s"
    );
    for c in &report.contenders {
        println!(
            "{:<12} {:>12} {:>12.4} {:>12.4}",
            c.name, c.bytes, c.load_s, c.ttfq_s
        );
    }
    println!(
        "\nttfq speedup: lazy {:.1}x, eager {:.1}x (floor {:.0}x on lazy)",
        report.ttfq_speedup_lazy, report.ttfq_speedup_eager, report.min_ttfq_speedup
    );

    if !check_only {
        let json = serde_json::to_string_pretty(&report).expect("serializable");
        std::fs::write(&out_path, json).expect("write BENCH_coldstart.json");
        println!("wrote {out_path}");
    }
    if report.ttfq_speedup_lazy < report.min_ttfq_speedup {
        eprintln!(
            "FAIL: mmap-lazy TTFQ speedup {:.1}x below the {:.0}x acceptance floor",
            report.ttfq_speedup_lazy, report.min_ttfq_speedup
        );
        std::process::exit(1);
    }
}
