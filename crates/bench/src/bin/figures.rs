//! Regenerate every figure and table of the COLARM paper as text series.
//!
//! ```text
//! figures <command> [--fast|--smoke] [--runs N] [--seed N] [--json FILE]
//!
//! commands:
//!   fig8      # closed frequent itemsets vs primary threshold (Figure 8)
//!   fig9      avg plan CPU cost grid, chess analog        (Figure 9)
//!   fig10     avg plan CPU cost grid, mushroom analog     (Figure 10)
//!   fig11     avg plan CPU cost grid, PUMSB analog        (Figure 11)
//!   fig12     % gains of optimized plans vs S-E-V         (Figure 12)
//!   fig13     fresh-local vs repeated-global CFIs         (Figure 13)
//!   accuracy  optimizer plan-selection accuracy           (§5.1, 108 scenarios)
//!   plans     the plan/optimization/cost-formula summary  (Table 4)
//!   dist      CFI count by itemset length per dataset     (§5 distribution analysis)
//!   scale     offline/online cost vs dataset size          (extension X4)
//!   ablation  supported-filter & containment-shortcut ablations (extension)
//!   all       everything above
//! ```
//!
//! Absolute times are machine-specific; the paper-comparable facts are the
//! *shapes*: which plans win where, how costs fall with |DQ|, and the
//! optimizer's hit rate. See EXPERIMENTS.md for paper-vs-measured notes.

use colarm::{LocalizedQuery, PlanKind};
use colarm_bench::*;
use colarm_data::VerticalIndex;
use colarm_mine::vertical::full_vertical;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::BTreeMap;
use std::time::Instant;

struct Args {
    command: String,
    scale: Scale,
    runs: usize,
    seed: u64,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        command: "all".to_string(),
        scale: Scale::Fast,
        runs: 3,
        seed: 42,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    let mut explicit_scale = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fast" => {
                args.scale = Scale::Fast;
                explicit_scale = true;
            }
            "--smoke" => {
                args.scale = Scale::Smoke;
                explicit_scale = true;
            }
            "--full" => {
                args.scale = Scale::Full;
                explicit_scale = true;
            }
            "--runs" => {
                args.runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--runs needs a number");
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            "--json" => {
                args.json = Some(it.next().expect("--json needs a path"));
            }
            "--help" | "-h" => {
                println!("see module docs: figures <fig8|fig9|fig10|fig11|fig12|fig13|accuracy|plans|ablation|all> [--fast|--smoke|--full] [--runs N] [--seed N] [--json FILE]");
                std::process::exit(0);
            }
            cmd if !cmd.starts_with('-') => args.command = cmd.to_string(),
            other => panic!("unknown flag {other}"),
        }
    }
    let _ = explicit_scale;
    args
}

fn main() {
    let args = parse_args();
    let mut json = BTreeMap::new();
    match args.command.as_str() {
        "fig8" => fig8(&args, &mut json),
        "fig9" => fig_plan_grid(&chess_spec(args.scale), "Figure 9", &args, &mut json),
        "fig10" => fig_plan_grid(&mushroom_spec(args.scale), "Figure 10", &args, &mut json),
        "fig11" => fig_plan_grid(&pumsb_spec(args.scale), "Figure 11", &args, &mut json),
        "fig12" => fig12(&args, &mut json),
        "fig13" => fig13(&args, &mut json),
        "accuracy" => accuracy(&args, &mut json),
        "plans" => plans_table(),
        "dist" => dist(&args, &mut json),
        "scale" => scale_sweep(&args, &mut json),
        "ablation" => ablation(&args, &mut json),
        "all" => {
            plans_table();
            dist(&args, &mut json);
            fig8(&args, &mut json);
            fig_plan_grid(&chess_spec(args.scale), "Figure 9", &args, &mut json);
            fig_plan_grid(&mushroom_spec(args.scale), "Figure 10", &args, &mut json);
            fig_plan_grid(&pumsb_spec(args.scale), "Figure 11", &args, &mut json);
            fig12(&args, &mut json);
            fig13(&args, &mut json);
            accuracy(&args, &mut json);
            ablation(&args, &mut json);
        }
        other => panic!("unknown command {other}; try --help"),
    }
    if let Some(path) = &args.json {
        let text = serde_json::to_string_pretty(&json).expect("serializable results");
        std::fs::write(path, text).expect("writable json path");
        eprintln!("[wrote {path}]");
    }
}

type Json = BTreeMap<String, serde_json::Value>;

fn header(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Figure 8: number of closed frequent itemsets by primary threshold.
fn fig8(args: &Args, json: &mut Json) {
    header("Figure 8: # closed frequent itemsets by primary threshold");
    let mut series = BTreeMap::new();
    for spec in all_specs(args.scale) {
        let dataset = (spec.build)();
        let vertical = VerticalIndex::build(&dataset);
        let columns = full_vertical(&vertical);
        let m = dataset.num_records() as f64;
        println!("{} ({} records, {} items):", spec.name, dataset.num_records(), dataset.schema().num_items());
        let mut points = Vec::new();
        for &p in spec.fig8_primaries {
            let min = ((p * m).ceil() as usize).max(1);
            let t = Instant::now();
            let count = colarm_mine::charm(&columns, min).len();
            println!(
                "  primary {:>5.1}% -> {:>8} CFIs   (mined in {:.2?})",
                p * 100.0,
                count,
                t.elapsed()
            );
            points.push(serde_json::json!({"primary": p, "cfis": count}));
        }
        series.insert(spec.name.to_string(), serde_json::Value::Array(points));
    }
    json.insert("fig8".into(), serde_json::json!(series));
    println!("(paper shape: counts explode as the primary threshold drops; chess/PUMSB steeply, mushroom gradually)");
}

/// Figures 9–11: average plan CPU cost grids.
fn fig_plan_grid(spec: &DatasetSpec, title: &str, args: &Args, json: &mut Json) {
    header(&format!(
        "{title}: avg plan execution time, {} analog (primary {:.0}%, minconf {:.0}%)",
        spec.name,
        spec.primary * 100.0,
        spec.minconf * 100.0
    ));
    let t = Instant::now();
    let system = build_system(spec);
    println!(
        "[index: {} MIPs, R-tree height {}, built+calibrated in {:.2?}]",
        system.index().num_mips(),
        system.index().rtree().height(),
        t.elapsed()
    );
    let cells = run_plan_grid(&system, spec, args.runs, args.seed);
    print_cells(&cells);
    json.insert(
        format!("{}_grid", spec.name),
        serde_json::to_value(&cells).expect("serializable"),
    );
}

fn print_cells(cells: &[GridCell]) {
    println!(
        "{:>6} {:>8} | {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} | opt-pick  fastest   rules",
        "|DQ|%", "minsupp%",
        PlanKind::ALL[0].name(),
        PlanKind::ALL[1].name(),
        PlanKind::ALL[2].name(),
        PlanKind::ALL[3].name(),
        PlanKind::ALL[4].name(),
        PlanKind::ALL[5].name(),
    );
    for c in cells {
        let secs: Vec<String> = c.avg_secs.iter().map(|s| format!("{:9.4}", s)).collect();
        println!(
            "{:>6.1} {:>8.1} | {} | {:>8} {:>8} {:>7.0}",
            c.dq_frac * 100.0,
            c.minsupp * 100.0,
            secs.join(" "),
            c.optimizer_plan().name(),
            c.fastest_plan().name(),
            c.avg_rules,
        );
    }
}

/// Figure 12: % gain of each optimized plan over S-E-V.
fn fig12(args: &Args, json: &mut Json) {
    header("Figure 12: % gains of optimized plans vs S-E-V");
    let mut all_cells = Vec::new();
    let mut out = BTreeMap::new();
    for spec in all_specs(args.scale) {
        let system = build_system(&spec);
        let cells = run_plan_grid(&system, &spec, args.runs, args.seed);
        let gains = gains_vs_sev(&cells);
        print_gains(spec.name, &gains);
        out.insert(spec.name.to_string(), gains.to_vec());
        all_cells.extend(cells);
    }
    let overall = gains_vs_sev(&all_cells);
    print_gains("Overall", &overall);
    out.insert("Overall".into(), overall.to_vec());
    json.insert("fig12".into(), serde_json::json!(out));
    println!("(paper shape: VS alone gains little; SS-based plans gain 8-44%, SS-E-U-V the most)");
}

fn print_gains(name: &str, gains: &[f64; 6]) {
    print!("{name:>10}: ");
    for (i, plan) in PlanKind::ALL.iter().enumerate() {
        if *plan == PlanKind::Sev || *plan == PlanKind::Arm {
            continue;
        }
        print!("{} {:+6.1}%  ", plan.name(), gains[i]);
    }
    println!();
}

/// Figure 13: fresh-local vs repeated-global CFIs per subset size.
fn fig13(args: &Args, json: &mut Json) {
    header("Figure 13: avg fresh-local vs repeated-global frequent itemsets");
    let mut out = BTreeMap::new();
    for spec in all_specs(args.scale) {
        let system = build_system(&spec);
        let mut rng = StdRng::seed_from_u64(args.seed);
        println!(
            "{} (local minsupp {:.0}%, global minsupp {:.0}%):",
            spec.name,
            spec.minsupps[0] * 100.0,
            spec.global_minsupp * 100.0
        );
        let mut points = Vec::new();
        for &frac in &[0.01, 0.1, 0.2, 0.5] {
            let (mut fresh, mut repeated) = (0usize, 0usize);
            let mut n = 0usize;
            while n < args.runs {
                let (_, subset) = random_subset_spec(
                    system.index().dataset(),
                    system.index().vertical(),
                    frac,
                    &mut rng,
                );
                if subset.is_empty() {
                    continue;
                }
                let counts = colarm::paradox::local_vs_global_cfis(
                    system.index(),
                    &subset,
                    spec.minsupps[0],
                    spec.global_minsupp,
                );
                fresh += counts.fresh_local;
                repeated += counts.repeated_global;
                n += 1;
            }
            let (fresh, repeated) = (fresh / n.max(1), repeated / n.max(1));
            println!(
                "  |DQ| = {:>4.0}%: fresh-local {:>7}, repeated-global {:>7}",
                frac * 100.0,
                fresh,
                repeated
            );
            points.push(serde_json::json!({
                "dq_frac": frac, "fresh_local": fresh, "repeated_global": repeated
            }));
        }
        out.insert(spec.name.to_string(), serde_json::Value::Array(points));
    }
    json.insert("fig13".into(), serde_json::json!(out));
    println!("(paper shape: majority of locally frequent itemsets are fresh — strong Simpson's paradox)");
}

/// §5.1: optimizer accuracy over 3 datasets × 4 |DQ| × 3 minsupp × 3
/// minconf = 108 scenarios.
fn accuracy(args: &Args, json: &mut Json) {
    header("Optimizer accuracy (paper §5.1: ~93% over 108 scenarios, ≤5% extra cost on misses)");
    let minconfs = [0.85, 0.90, 0.95];
    let mut all_cells = Vec::new();
    for spec in all_specs(args.scale) {
        let system = build_system(&spec);
        let mut cells = Vec::new();
        for (si, &frac) in spec.dq_fracs.iter().enumerate() {
            for (mi, &minsupp) in spec.minsupps.iter().enumerate() {
                for (ci, &minconf) in minconfs.iter().enumerate() {
                    cells.push(measure_cell(
                        &system,
                        spec.name,
                        frac,
                        minsupp,
                        minconf,
                        args.runs,
                        args.seed ^ ((si as u64) << 40) ^ ((mi as u64) << 20) ^ ci as u64,
                    ));
                }
            }
        }
        let acc = optimizer_accuracy(&cells);
        print_accuracy(spec.name, &acc);
        all_cells.extend(cells);
    }
    let acc = optimizer_accuracy(&all_cells);
    print_accuracy("Overall", &acc);
    json.insert("accuracy".into(), serde_json::to_value(acc).expect("serializable"));
}

/// §5 distribution analysis: CFI counts by itemset length — chess/PUMSB
/// roughly symmetric, mushroom multi-modal (the paper cites this structure
/// as what differentiates the datasets' plan behaviour).
fn dist(args: &Args, json: &mut Json) {
    header("CFI length distribution (paper §5 dataset analysis)");
    let mut out = BTreeMap::new();
    for spec in all_specs(args.scale) {
        let system = build_system(&spec);
        let hist = system.index().ittree().level_histogram();
        print!("{:>10} ({} CFIs): ", spec.name, system.index().num_mips());
        for (len, count) in hist.iter().enumerate() {
            if *count > 0 {
                print!("len{len}:{count} ");
            }
        }
        println!();
        out.insert(spec.name.to_string(), hist);
    }
    json.insert("dist".into(), serde_json::json!(out));
}

/// Extension X4: the POQM trade-off as the dataset grows — one-time
/// offline indexing cost vs per-query online cost, on the PUMSB analog at
/// decreasing down-scale factors.
fn scale_sweep(args: &Args, json: &mut Json) {
    header("Scalability: offline indexing vs online query cost (extension X4)");
    let mut rows = Vec::new();
    println!(
        "{:>7} {:>9} {:>9} | {:>12} {:>8} | {:>12} {:>12}",
        "scale", "records", "items", "index build", "MIPs", "avg query", "avg ARM"
    );
    for &scale in &[16u32, 8, 4] {
        let dataset = colarm_data::synth::pumsb_like_scaled(scale);
        let (records, items) = (dataset.num_records(), dataset.schema().num_items());
        let t = Instant::now();
        let system = colarm::Colarm::build(
            dataset,
            colarm::MipIndexConfig {
                primary_support: 0.83,
                ..Default::default()
            },
        )
        .expect("index builds");
        let build_secs = t.elapsed().as_secs_f64();
        let mut rng = StdRng::seed_from_u64(args.seed);
        let (mut q_total, mut arm_total, mut n) = (0.0f64, 0.0f64, 0usize);
        while n < args.runs.max(2) {
            let (range, subset) = random_subset_spec(
                system.index().dataset(),
                system.index().vertical(),
                0.2,
                &mut rng,
            );
            if subset.is_empty() {
                continue;
            }
            let query = LocalizedQuery::builder()
                .range(range)
                .minsupp(0.88)
                .minconf(0.85)
                .build().expect("valid query");
            let t = Instant::now();
            let _ = system
                .run(&colarm::QueryRequest::query(&query))
                .expect("query runs");
            q_total += t.elapsed().as_secs_f64();
            let t = Instant::now();
            let _ = system
                .run(&colarm::QueryRequest::query(&query).with_plan(PlanKind::Arm))
                .expect("arm runs");
            arm_total += t.elapsed().as_secs_f64();
            n += 1;
        }
        let (avg_q, avg_arm) = (q_total / n as f64, arm_total / n as f64);
        println!(
            "{:>7} {:>9} {:>9} | {:>11.2}s {:>8} | {:>11.4}s {:>11.4}s",
            format!("1/{scale}"),
            records,
            items,
            build_secs,
            system.index().num_mips(),
            avg_q,
            avg_arm
        );
        rows.push(serde_json::json!({
            "scale": scale, "records": records, "items": items,
            "build_secs": build_secs, "mips": system.index().num_mips(),
            "avg_query_secs": avg_q, "avg_arm_secs": avg_arm,
        }));
    }
    println!("(the POQM bet: offline cost grows with the data, optimized online cost doesn't follow ARM's growth)");
    json.insert("scale".into(), serde_json::Value::Array(rows));
}

fn print_accuracy(name: &str, acc: &colarm_bench::AccuracySummary) {
    println!(
        "{:>10}: exact {:>5.1}%, within-10% {:>5.1}%, mean regret {:+.1}%, worst {:+.1}% over {} scenarios",
        name,
        acc.exact * 100.0,
        acc.within_10pct * 100.0,
        acc.mean_regret * 100.0,
        acc.worst_regret * 100.0,
        acc.cells
    );
}

/// Table 4: the plan catalog.
fn plans_table() {
    header("Table 4: summary of the six mining plans");
    println!("{:<10} {:<75} Query Cost", "Plan", "Optimization");
    for plan in PlanKind::ALL {
        println!(
            "{:<10} {:<75} {}",
            plan.name(),
            plan.optimization(),
            plan.cost_formula()
        );
    }
}

/// Extension X1: ablations of the two key optimizations.
fn ablation(args: &Args, json: &mut Json) {
    header("Ablation: supported R-tree bound & containment shortcut (extension X1)");
    // Chess cannot satisfy `minsupp × |DQ| > primary × |D|` at the paper's
    // parameters (the supported bound provably never fires — see
    // EXPERIMENTS.md); mushroom at large subsets can. Run both.
    for spec in [chess_spec(args.scale), mushroom_spec(args.scale)] {
        ablation_for(&spec, args, json);
    }
}

fn ablation_for(spec: &DatasetSpec, args: &Args, json: &mut Json) {
    println!("{}:", spec.name);
    let system = build_system(spec);
    let index = system.index();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let mut rows = Vec::new();
    for &frac in &[0.5, 0.1, 0.01] {
        let (range, subset) = random_subset_spec(
            index.dataset(),
            index.vertical(),
            frac,
            &mut rng,
        );
        if subset.is_empty() {
            continue;
        }
        let query = LocalizedQuery::builder()
            .range(range)
            .minsupp(spec.minsupps[1])
            .minconf(spec.minconf)
            .build().expect("valid query");
        let min = query.minsupp_count(subset.len());
        // (a) SEARCH vs SUPPORTED-SEARCH node accesses.
        let (_, plain) = colarm::ops::search(index, &subset);
        let (_, supported) = colarm::ops::supported_search(index, &subset, min);
        // (b) SS-E-V vs SS-E-U-V (the Lemma 4.5 shortcut).
        let ssev = colarm::execute_plan(index, &query, &subset, PlanKind::SsEv).unwrap();
        let sseuv = colarm::execute_plan(index, &query, &subset, PlanKind::SsEuv).unwrap();
        println!(
            "|DQ| = {:>4.1}%: search nodes {:>6.0} -> {:>6.0} with support bound ({:>5.1}% pruned); \
             SS-E-V {:.4}s vs SS-E-U-V {:.4}s",
            subset.fraction() * 100.0,
            plain.units,
            supported.units,
            (1.0 - supported.units / plain.units.max(1.0)) * 100.0,
            ssev.trace.total.as_secs_f64(),
            sseuv.trace.total.as_secs_f64(),
        );
        rows.push(serde_json::json!({
            "dq_frac": subset.fraction(),
            "search_nodes": plain.units,
            "supported_search_nodes": supported.units,
            "ssev_secs": ssev.trace.total.as_secs_f64(),
            "sseuv_secs": sseuv.trace.total.as_secs_f64(),
        }));
    }
    // (c) packing ablation: STR vs insertion-built tree node accesses.
    let dataset = (spec.build)();
    let str_index = colarm::MipIndex::build(
        dataset,
        colarm::MipIndexConfig {
            primary_support: spec.primary,
            packing: colarm::Packing::Str,
            ..Default::default()
        },
    )
    .unwrap();
    let ins_index = colarm::MipIndex::build(
        (spec.build)(),
        colarm::MipIndexConfig {
            primary_support: spec.primary,
            packing: colarm::Packing::Insertion,
            ..Default::default()
        },
    )
    .unwrap();
    let (_, subset) = random_subset_spec(
        str_index.dataset(),
        &VerticalIndex::build(str_index.dataset()),
        0.2,
        &mut rng,
    );
    let (_, t_str) = colarm::ops::search(&str_index, &subset);
    let (_, t_ins) = colarm::ops::search(&ins_index, &subset);
    println!(
        "packing: STR-packed search visits {:.0} nodes vs {:.0} for insertion-built (height {} vs {})",
        t_str.units,
        t_ins.units,
        str_index.rtree().height(),
        ins_index.rtree().height()
    );
    json.insert(
        format!("ablation_{}", spec.name),
        serde_json::Value::Array(rows),
    );
}
