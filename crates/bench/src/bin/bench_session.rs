//! Session drill-down benchmark: a synthetic 8-query refinement chain
//! (the COLARM exploration workload) executed three ways at each thread
//! count:
//!
//! 1. **Baseline** — the pre-pool, pre-reuse system: every parallel
//!    region on freshly spawned scoped threads
//!    ([`colarm::data::par::set_scoped_executor`]), every query resolving
//!    its subset and scanning its columns from scratch.
//! 2. **Pooled + fresh** — persistent worker pool, caches still disabled
//!    (isolates the pool's contribution).
//! 3. **Pooled + derived** — the full path: pool plus a caching
//!    [`QuerySession`] deriving subsets and restricted columns from the
//!    previous query.
//!
//! Also micro-benchmarks the persistent pool against the per-call
//! `std::thread::scope` executor it replaced on many small regions.
//! Writes `BENCH_session.json`.
//!
//! ```text
//! cargo run --release --bin bench_session [-- OUT.json]
//! ```
//!
//! The acceptance gate this file documents: `speedup_vs_baseline >= 1.5`
//! on the 8-query chain at 8 threads. All three configurations must agree
//! on every query's rules, which this binary asserts on every run.

use colarm::data::par::set_scoped_executor;
use colarm::data::synth::{generate, SynthConfig};
use colarm::data::{AttributeId, RangeSpec};
use colarm::mine::rules::Rule;
use colarm::{Colarm, LocalizedQuery, MipIndexConfig, QuerySession, Semantics, SessionConfig};
use serde::Serialize;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const MINSUPP: f64 = 0.75;
const MINCONF: f64 = 0.6;

/// Interactive scale: small focal universe, wide schema. 16 attributes
/// put the restricted scans over the 64-column parallelism threshold, so
/// SELECT runs as a parallel region the way it does on real wide tables.
fn dataset() -> colarm::data::Dataset {
    generate(&SynthConfig {
        name: "session-chain".into(),
        seed: 4242,
        records: 10_000,
        domains: vec![5, 4, 5, 4, 5, 4, 5, 4, 5, 4, 5, 4, 5, 4, 5, 4],
        top_mass: 0.6,
        skew: 1.0,
        clusters: 3,
        cluster_focus: 0.5,
        focus_strength: 0.9,
        templates: 4,
        template_len: 3,
        template_prob: 0.3,
    })
}

/// The 8-query drill-down chain: step `i` constrains one more attribute
/// on top of step `i − 1`'s spec, keeping the most popular value(s) so
/// the subsets decay geometrically but never empty. Unrestricted
/// semantics forces the ARM plan, so SELECT — the operator the column
/// cache serves — runs at every step.
fn chain() -> Vec<LocalizedQuery> {
    let keeps: [&[u16]; 8] = [&[0], &[0], &[0], &[0], &[0, 1], &[0], &[0, 1], &[0]];
    (1..=keeps.len())
        .map(|depth| {
            let mut range = RangeSpec::all();
            for (i, keep) in keeps[..depth].iter().enumerate() {
                range = range.with(AttributeId(i as u16), keep.iter().copied());
            }
            LocalizedQuery::builder()
                .range(range)
                .minsupp(MINSUPP)
                .minconf(MINCONF)
                .semantics(Semantics::Unrestricted)
                .build()
                .expect("valid query")
        })
        .collect()
}

/// Run the whole chain through one session. `reuse = false` zeroes every
/// cache bound, so each query resolves its subset and scans its columns
/// from scratch — the pre-session per-query baseline.
fn run_chain(
    colarm: &Arc<Colarm>,
    chain: &[LocalizedQuery],
    threads: usize,
    reuse: bool,
) -> Vec<Vec<Rule>> {
    let config = if reuse {
        SessionConfig::default()
    } else {
        SessionConfig {
            max_answers: 0,
            max_subsets: 0,
            max_columns: 0,
        }
    };
    let session = QuerySession::with_config(colarm.clone(), config);
    session.set_threads(threads);
    chain
        .iter()
        .map(|q| session.execute(q).expect("chain query runs").rules.clone())
        .collect()
}

/// Best of `reps` wall-clock timings of `f`.
fn best_of<T, F: FnMut() -> T>(reps: usize, mut f: F) -> f64 {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// A small CPU-bound map — region setup overhead dominates, which is
/// exactly what the persistent pool is meant to eliminate.
fn region_workload(items: &[u64], threads: usize) -> u64 {
    colarm::data::par::parallel_map(items, threads, |_, &x| {
        let mut v = x;
        for _ in 0..200 {
            v = v
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
        v
    })
    .iter()
    .fold(0u64, |a, &b| a ^ b)
}

#[derive(Serialize)]
struct ChainRow {
    threads: usize,
    /// PR 4 semantics: scoped threads per region, every cache disabled.
    baseline_scoped_fresh_s: f64,
    /// Persistent pool, caches still disabled.
    pooled_fresh_s: f64,
    /// Persistent pool + caching session (subsets + columns derived).
    pooled_derived_s: f64,
    /// baseline / (pooled + derived) — the headline number.
    speedup_vs_baseline: f64,
    /// pooled_fresh / pooled_derived — reuse contribution alone.
    speedup_reuse_only: f64,
    /// baseline / pooled_fresh — pool contribution alone.
    speedup_pool_only: f64,
}

#[derive(Serialize)]
struct PoolRow {
    threads: usize,
    regions: usize,
    items_per_region: usize,
    /// Per-call `std::thread::scope` reference executor.
    scoped_s: f64,
    /// Persistent pool (`par::parallel_map`).
    pooled_s: f64,
    /// scoped / pooled (>1 = pool wins).
    speedup: f64,
}

#[derive(Serialize)]
struct Report {
    description: &'static str,
    budget: &'static str,
    harness: String,
    records: usize,
    chain_len: usize,
    minsupp: f64,
    minconf: f64,
    subset_sizes: Vec<usize>,
    rules_per_query: Vec<usize>,
    reps: usize,
    chain: Vec<ChainRow>,
    pool_microbench: Vec<PoolRow>,
    pool_stats: colarm::PoolStats,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_session.json".to_string());
    let colarm = Colarm::build(
        dataset(),
        MipIndexConfig {
            primary_support: 0.05,
            ..Default::default()
        },
    )
    .expect("index builds")
    .into_shared();
    let chain = chain();
    let subset_sizes: Vec<usize> = chain
        .iter()
        .map(|q| {
            colarm
                .index()
                .resolve_subset(q.range.clone())
                .expect("resolves")
                .len()
        })
        .collect();
    assert!(
        subset_sizes.iter().all(|&s| s > 0),
        "chain must stay non-empty: {subset_sizes:?}"
    );

    let reps = 9;
    let mut rows = Vec::new();
    for &threads in &[1usize, 2, 8] {
        // Equivalence first: neither the executor nor reuse may change
        // any answer.
        let derived = run_chain(&colarm, &chain, threads, true);
        let fresh = run_chain(&colarm, &chain, threads, false);
        set_scoped_executor(true);
        let scoped_fresh = run_chain(&colarm, &chain, threads, false);
        set_scoped_executor(false);
        assert_eq!(derived, fresh, "reuse changed answers at {threads} threads");
        assert_eq!(
            scoped_fresh, fresh,
            "executor changed answers at {threads} threads"
        );
        set_scoped_executor(true);
        let baseline_scoped_fresh_s =
            best_of(reps, || run_chain(&colarm, &chain, threads, false));
        set_scoped_executor(false);
        let pooled_fresh_s = best_of(reps, || run_chain(&colarm, &chain, threads, false));
        let pooled_derived_s = best_of(reps, || run_chain(&colarm, &chain, threads, true));
        rows.push(ChainRow {
            threads,
            baseline_scoped_fresh_s,
            pooled_fresh_s,
            pooled_derived_s,
            speedup_vs_baseline: baseline_scoped_fresh_s / pooled_derived_s,
            speedup_reuse_only: pooled_fresh_s / pooled_derived_s,
            speedup_pool_only: baseline_scoped_fresh_s / pooled_fresh_s,
        });
    }
    let rules_per_query: Vec<usize> = run_chain(&colarm, &chain, 1, true)
        .iter()
        .map(|r| r.len())
        .collect();

    // Pool microbench: many small regions, where spawn/join overhead is
    // the whole story. Same `parallel_map` both sides; only the executor
    // switch differs.
    let items: Vec<u64> = (0..256u64).collect();
    let regions = 500;
    let mut pool_rows = Vec::new();
    for &threads in &[2usize, 8] {
        let pooled_once = region_workload(&items, threads);
        set_scoped_executor(true);
        let scoped_once = region_workload(&items, threads);
        set_scoped_executor(false);
        assert_eq!(pooled_once, scoped_once, "executors diverged");
        let pooled_s = best_of(3, || {
            (0..regions).fold(0u64, |a, _| a ^ region_workload(&items, threads))
        });
        set_scoped_executor(true);
        let scoped_s = best_of(3, || {
            (0..regions).fold(0u64, |a, _| a ^ region_workload(&items, threads))
        });
        set_scoped_executor(false);
        pool_rows.push(PoolRow {
            threads,
            regions,
            items_per_region: items.len(),
            scoped_s,
            pooled_s,
            speedup: scoped_s / pooled_s,
        });
    }

    let report = Report {
        description: "8-query drill-down chain: the pre-pool baseline (per-region \
                      scoped threads, every query resolved and scanned fresh) vs \
                      the persistent worker pool with subsets + restricted columns \
                      derived from the previous query through a caching \
                      QuerySession; plus pool vs per-call thread::scope on small \
                      regions",
        budget: "chain speedup_vs_baseline >= 1.5 at 8 threads (scoped threads + \
                 fresh scans vs pooled + derived)",
        harness: "cargo run --release --bin bench_session".to_string(),
        records: colarm.index().dataset().num_records(),
        chain_len: chain.len(),
        minsupp: MINSUPP,
        minconf: MINCONF,
        subset_sizes,
        rules_per_query,
        reps,
        chain: rows,
        pool_microbench: pool_rows,
        pool_stats: colarm::pool_stats(),
    };
    for r in &report.chain {
        println!(
            "chain @ {} threads: baseline {:.4}s, pooled+fresh {:.4}s, pooled+derived \
             {:.4}s | vs baseline {:.2}x (reuse {:.2}x, pool {:.2}x)",
            r.threads,
            r.baseline_scoped_fresh_s,
            r.pooled_fresh_s,
            r.pooled_derived_s,
            r.speedup_vs_baseline,
            r.speedup_reuse_only,
            r.speedup_pool_only
        );
    }
    for r in &report.pool_microbench {
        println!(
            "pool @ {} threads × {} regions: scoped {:.4}s, pooled {:.4}s, speedup {:.2}x",
            r.threads, r.regions, r.scoped_s, r.pooled_s, r.speedup
        );
    }
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json).expect("report written");
    println!("wrote {out_path}");
}
