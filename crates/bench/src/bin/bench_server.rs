//! Server throughput benchmark: concurrent drill-down clients hammering
//! a [`ColarmServer`] over real HTTP/1.1 keep-alive connections.
//!
//! Eight client threads each open one persistent connection and repeat a
//! drill-down round: create a fresh tenant session, then walk the same
//! 8-query refinement chain `bench_session` uses, so every round pays
//! session setup + 8 queries with subset/column derivation between them —
//! the interactive multi-tenant workload `colarm serve` exists for.
//! Per-request wall latencies are pooled into p50/p99 and an aggregate
//! qps. Before timing, one client's responses are checked rule-for-rule
//! against in-process execution, so the numbers describe a server that
//! is provably returning the right answers. Writes `BENCH_server.json`.
//!
//! ```text
//! cargo run --release --bin bench_server [-- OUT.json] [--check]
//! ```
//!
//! The run always enforces the `acceptance` thresholds (minimum qps,
//! maximum p99) and exits nonzero on a miss — the hard gate
//! `scripts/ci.sh --bench` relies on. `--check` additionally skips
//! rewriting the committed report file.

use colarm::data::synth::{generate, SynthConfig};
use colarm::data::{AttributeId, RangeSpec};
use colarm::{
    Colarm, ColarmServer, LocalizedQuery, MipIndexConfig, QueryRequest, Semantics, ServerConfig,
    TransportConfig,
};
use serde::Serialize;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
const ROUNDS_PER_CLIENT: usize = 6;
const MINSUPP: f64 = 0.75;
const MINCONF: f64 = 0.6;

// CI-gate floors, deliberately loose: the committed numbers come from a
// single-core container, and the gate exists to catch transport-level
// collapses (an order-of-magnitude qps drop, multi-second tail stalls),
// not scheduler jitter.
const MIN_QPS: f64 = 25.0;
const MAX_P99_MS: f64 = 3_000.0;

/// Same interactive-scale dataset as `bench_session`: 10k records over a
/// 16-attribute schema, wide enough that restricted SELECT scans run as
/// parallel regions.
fn dataset() -> colarm::data::Dataset {
    generate(&SynthConfig {
        name: "server-bench".into(),
        seed: 4242,
        records: 10_000,
        domains: vec![5, 4, 5, 4, 5, 4, 5, 4, 5, 4, 5, 4, 5, 4, 5, 4],
        top_mass: 0.6,
        skew: 1.0,
        clusters: 3,
        cluster_focus: 0.5,
        focus_strength: 0.9,
        templates: 4,
        template_len: 3,
        template_prob: 0.3,
    })
}

/// The 8-query drill-down chain (one more attribute constrained per
/// step). Unrestricted semantics forces ARM so SELECT — and therefore
/// the session column cache — is exercised at every step.
fn chain() -> Vec<LocalizedQuery> {
    let keeps: [&[u16]; 8] = [&[0], &[0], &[0], &[0], &[0, 1], &[0], &[0, 1], &[0]];
    (1..=keeps.len())
        .map(|depth| {
            let mut range = RangeSpec::all();
            for (i, keep) in keeps[..depth].iter().enumerate() {
                range = range.with(AttributeId(i as u16), keep.iter().copied());
            }
            LocalizedQuery::builder()
                .range(range)
                .minsupp(MINSUPP)
                .minconf(MINCONF)
                .semantics(Semantics::Unrestricted)
                .build()
                .expect("valid query")
        })
        .collect()
}

/// A keep-alive HTTP/1.1 client: one TCP connection, many requests.
struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(port: u16) -> Self {
        let stream = TcpStream::connect(("127.0.0.1", port)).expect("connects");
        // Requests are written in small pieces; without NODELAY each one
        // risks a Nagle/delayed-ACK stall that dominates the latency.
        stream.set_nodelay(true).expect("nodelay sets");
        Client {
            reader: BufReader::new(stream),
        }
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, serde_json::Value) {
        write!(
            self.reader.get_mut(),
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("request writes");
        let mut status = 0u16;
        let mut length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header line");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if line.starts_with("HTTP/1.1 ") {
                status = line
                    .split_whitespace()
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .expect("status code");
            } else if let Some(v) = line.strip_prefix("Content-Length: ") {
                length = v.parse().expect("content length");
            }
        }
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body).expect("body reads");
        let body = String::from_utf8(body).expect("utf8 body");
        (status, serde_json::from_str(&body).expect("JSON body"))
    }
}

/// One drill-down round for tenant `session`: create the session, then
/// walk the whole chain through it. Returns per-request latencies.
fn run_round(client: &mut Client, session: &str, bodies: &[String]) -> Vec<Duration> {
    let mut latencies = Vec::with_capacity(bodies.len() + 1);
    let create = format!(r#"{{"id": "{session}"}}"#);
    let path = format!("/sessions/{session}/query");
    let t = Instant::now();
    let (status, _) = client.request("POST", "/sessions", &create);
    latencies.push(t.elapsed());
    assert_eq!(status, 201, "session create failed");
    for body in bodies {
        let t = Instant::now();
        let (status, outcome) = client.request("POST", &path, body);
        latencies.push(t.elapsed());
        assert_eq!(status, 200, "query failed: {outcome}");
    }
    let (status, _) = client.request("DELETE", &path.replace("/query", ""), "");
    assert_eq!(status, 200, "session evict failed");
    latencies
}

fn percentile_ms(sorted: &[Duration], p: f64) -> f64 {
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx].as_secs_f64() * 1e3
}

#[derive(Serialize)]
struct Acceptance {
    min_qps: f64,
    max_p99_ms: f64,
}

#[derive(Serialize)]
struct Report {
    description: &'static str,
    harness: String,
    records: usize,
    chain_len: usize,
    minsupp: f64,
    minconf: f64,
    clients: usize,
    rounds_per_client: usize,
    /// Untimed rounds each client ran before measurement started (warms
    /// the connection path, worker pool, and allocator so the timed
    /// rounds measure steady state, not first-touch costs).
    warmup_rounds: usize,
    workers: usize,
    /// session create + 8 queries per round, across all clients.
    total_requests: usize,
    wall_s: f64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    server_queries: u64,
    server_rejected: u64,
    acceptance: Acceptance,
}

fn main() {
    let mut out_path = "BENCH_server.json".to_string();
    let mut check_only = false;
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check_only = true;
        } else {
            out_path = arg;
        }
    }
    let colarm = Colarm::build(
        dataset(),
        MipIndexConfig {
            primary_support: 0.05,
            ..Default::default()
        },
    )
    .expect("index builds")
    .into_shared();
    let server = ColarmServer::new(
        colarm.clone(),
        ServerConfig {
            max_concurrency: CLIENTS * 2,
            ..Default::default()
        },
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port binds");
    // One worker per client: with fewer workers than connections the
    // CPU-bound queries head-of-line block their queue-mates and the
    // tail measures scheduling, not the transport. Sized equal, the
    // numbers compare apples-to-apples with a thread-per-connection
    // server.
    let transport = TransportConfig {
        workers: CLIENTS,
        ..TransportConfig::default()
    };
    let workers = transport.workers;
    let handle = server
        .serve_listener_with(listener, transport)
        .expect("transport starts");
    let port = handle.addr().port();
    let bodies: Vec<String> = chain()
        .iter()
        .map(|q| serde_json::to_string(&QueryRequest::query(q)).expect("serializes"))
        .collect();

    // Correctness gate before any timing: the wire answers must match
    // in-process execution query for query.
    {
        let mut client = Client::connect(port);
        let (status, _) = client.request("POST", "/sessions", r#"{"id": "gate"}"#);
        assert_eq!(status, 201);
        for (q, body) in chain().iter().zip(&bodies) {
            let (status, wire) = client.request("POST", "/sessions/gate/query", body);
            assert_eq!(status, 200, "gate query failed: {wire}");
            let direct = colarm.run(&QueryRequest::query(q)).expect("in-process run");
            assert_eq!(
                wire["rules"],
                serde_json::to_value(&direct.rules).expect("rules serialize"),
                "server diverged from in-process execution"
            );
        }
        let (status, _) = client.request("DELETE", "/sessions/gate", "");
        assert_eq!(status, 200);
    }

    // Warmup: every client runs one untimed round at full concurrency
    // before the clock starts, so the timed rounds see a warm connection
    // path, worker pool, and allocator on every worker — not just the
    // one a single probe connection happened to land on.
    const WARMUP_ROUNDS: usize = 1;
    for _ in 0..WARMUP_ROUNDS {
        let warmers: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let bodies = bodies.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(port);
                    run_round(&mut client, &format!("warmup-{c}"), &bodies);
                })
            })
            .collect();
        for w in warmers {
            w.join().expect("warmup client");
        }
    }

    let wall = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let bodies = bodies.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(port);
                let mut latencies = Vec::new();
                for round in 0..ROUNDS_PER_CLIENT {
                    let session = format!("client-{c}-round-{round}");
                    latencies.extend(run_round(&mut client, &session, &bodies));
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<Duration> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let wall_s = wall.elapsed().as_secs_f64();
    latencies.sort_unstable();

    let stats = server.handle("GET", "/stats", b"");
    let stats: serde_json::Value = serde_json::from_str(&stats.body).expect("stats JSON");
    let report = Report {
        description: "8 concurrent keep-alive HTTP clients (TCP_NODELAY), each \
                      repeating a drill-down round (create tenant session, walk \
                      the 8-query refinement chain, evict) against one shared \
                      ColarmServer on the bounded worker-pool transport; wire \
                      answers verified against in-process execution before \
                      timing",
        harness: "cargo run --release --bin bench_server [-- OUT.json] [--check]; \
                  qps must reach min_qps and p99 must stay under max_p99_ms or \
                  the run exits nonzero (the scripts/ci.sh --bench gate)"
            .to_string(),
        records: colarm.index().dataset().num_records(),
        chain_len: bodies.len(),
        minsupp: MINSUPP,
        minconf: MINCONF,
        clients: CLIENTS,
        rounds_per_client: ROUNDS_PER_CLIENT,
        warmup_rounds: WARMUP_ROUNDS,
        workers,
        total_requests: latencies.len(),
        wall_s,
        qps: latencies.len() as f64 / wall_s,
        p50_ms: percentile_ms(&latencies, 50.0),
        p99_ms: percentile_ms(&latencies, 99.0),
        max_ms: percentile_ms(&latencies, 100.0),
        server_queries: stats["queries"].as_u64().unwrap_or(0),
        server_rejected: stats["rejected"].as_u64().unwrap_or(0),
        acceptance: Acceptance {
            min_qps: MIN_QPS,
            max_p99_ms: MAX_P99_MS,
        },
    };
    println!(
        "{} clients × {} rounds: {} requests in {:.3}s = {:.0} qps | p50 {:.2}ms, \
         p99 {:.2}ms, max {:.2}ms | server saw {} queries, {} rejected",
        report.clients,
        report.rounds_per_client,
        report.total_requests,
        report.wall_s,
        report.qps,
        report.p50_ms,
        report.p99_ms,
        report.max_ms,
        report.server_queries,
        report.server_rejected
    );
    handle.shutdown();
    if !check_only {
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(&out_path, json).expect("report written");
        println!("wrote {out_path}");
    }
    let mut failures = Vec::new();
    if report.qps < MIN_QPS {
        failures.push(format!("qps {:.1} < required {MIN_QPS:.1}", report.qps));
    }
    if report.p99_ms > MAX_P99_MS {
        failures.push(format!(
            "p99 {:.1}ms > allowed {MAX_P99_MS:.1}ms",
            report.p99_ms
        ));
    }
    if !failures.is_empty() {
        eprintln!("\nbench gate FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("bench gate: qps and p99 within thresholds");
}
