//! Optimizer-quality benchmark: prediction accuracy and plan-pick
//! quality of the calibrated cost model, with the statistics catalog
//! (per-attribute histograms, Eqs. 1–6 per-query inputs) against the
//! global-average fallback, on the same calibration and the same seeded
//! query workload. Writes `BENCH_optimizer.json`.
//!
//! ```text
//! cargo run --release --bin bench_optimizer [-- OUT.json] [--check]
//! ```
//!
//! Per query, every one of the six plans is estimated and executed; a
//! *mispick* is a chosen plan whose measured time exceeds 1.25× the
//! measured-fastest plan (the margin absorbs near-tie noise between the
//! index plans). Accuracy is the |log10(estimated / measured)| of the
//! chosen plan — 0 is perfect, 1 is an order of magnitude off.
//!
//! Gates (`scripts/ci.sh --bench` runs `--check` and relies on the
//! nonzero exit):
//!
//! * catalog median |log10 ratio| ≤ 1.0 — predictions land within an
//!   order of magnitude of reality;
//! * catalog mispick rate ≤ 0.40;
//! * catalog mispick rate ≤ baseline mispick rate + 0.10 — the catalog
//!   must not cost picks relative to the global averages it replaced.

use colarm::stats::StatsSource;
use colarm::{Colarm, LocalizedQuery, MipIndexConfig, PlanKind};
use colarm_bench::{calibration_queries, mushroom_spec, plan_index, random_subset_spec, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

const QUERIES: usize = 24;
const MISPICK_MARGIN: f64 = 1.25;

#[derive(Serialize)]
struct Acceptance {
    catalog_max_median_abs_log10: f64,
    catalog_max_mispick_rate: f64,
    catalog_max_mispick_rate_over_baseline: f64,
}

#[derive(Serialize)]
struct SystemSummary {
    name: &'static str,
    queries: usize,
    /// Median |log10(estimated / measured)| of the chosen plan.
    median_abs_log10: f64,
    /// Worst |log10 ratio| seen across all queries and plans.
    worst_abs_log10: f64,
    mispicks: usize,
    mispick_rate: f64,
    /// Fraction of cost terms whose prediction came from the catalog
    /// (1.0 for the catalog system, 0.0 for the baseline).
    catalog_term_fraction: f64,
}

#[derive(Serialize)]
struct Report {
    description: &'static str,
    harness: &'static str,
    acceptance: Acceptance,
    systems: Vec<SystemSummary>,
}

/// Run the seeded workload through one system and summarize it.
fn evaluate(system: &Colarm, name: &'static str, minsupps: &[f64], minconf: f64) -> SystemSummary {
    let mut rng = StdRng::seed_from_u64(0x0B71);
    let mut ratios = Vec::new();
    let mut worst = 0.0f64;
    let mut mispicks = 0usize;
    let mut catalog_terms = 0usize;
    let mut total_terms = 0usize;
    let mut completed = 0usize;
    while completed < QUERIES {
        let frac = [0.1, 0.2, 0.4][completed % 3];
        let (range, subset) = random_subset_spec(
            system.index().dataset(),
            system.index().vertical(),
            frac,
            &mut rng,
        );
        if subset.is_empty() {
            continue;
        }
        let query = LocalizedQuery::builder()
            .range(range)
            .minsupp(minsupps[completed % minsupps.len()])
            .minconf(minconf)
            .build()
            .expect("valid query");
        let choice = system.optimizer().choose(system.index(), &query, &subset);
        for est in &choice.estimates {
            catalog_terms += est
                .terms
                .iter()
                .filter(|t| t.stats_source == StatsSource::Catalog)
                .count();
            total_terms += est.terms.len();
        }
        let mut measured = [0.0f64; 6];
        for (i, &plan) in PlanKind::ALL.iter().enumerate() {
            // Best of 3: smoke-scale executions run in microseconds, so a
            // single sample is mostly scheduler noise.
            measured[i] = (0..3)
                .map(|_| {
                    colarm::execute_plan(system.index(), &query, &subset, plan)
                        .expect("valid query")
                        .trace
                        .total
                        .as_secs_f64()
                })
                .fold(f64::INFINITY, f64::min);
            let est = choice.estimate_for(plan).total();
            let ratio = (est / measured[i].max(1e-9)).log10().abs();
            worst = worst.max(ratio);
        }
        let chosen_secs = measured[plan_index(choice.chosen)];
        let est = choice.estimate_for(choice.chosen).total();
        ratios.push((est / chosen_secs.max(1e-9)).log10().abs());
        let fastest = measured.iter().cloned().fold(f64::INFINITY, f64::min);
        if chosen_secs > fastest * MISPICK_MARGIN {
            mispicks += 1;
        }
        completed += 1;
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    SystemSummary {
        name,
        queries: completed,
        median_abs_log10: ratios[ratios.len() / 2],
        worst_abs_log10: worst,
        mispicks,
        mispick_rate: mispicks as f64 / completed as f64,
        catalog_term_fraction: catalog_terms as f64 / total_terms.max(1) as f64,
    }
}

fn main() {
    let mut out_path = "BENCH_optimizer.json".to_string();
    let mut check_only = false;
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check_only = true;
        } else {
            out_path = arg;
        }
    }

    let spec = mushroom_spec(Scale::Smoke);

    // Catalog system: the normal offline phase (collect_stats defaults on).
    let catalog_system = colarm_bench::build_system(&spec);
    assert!(
        catalog_system.index().catalog().is_some(),
        "offline build must produce a statistics catalog"
    );

    // Baseline: identical dataset, config, and calibration workload, but
    // no catalog — the optimizer falls back to the global averages.
    let mut baseline_system = Colarm::build(
        (spec.build)(),
        MipIndexConfig {
            primary_support: spec.primary,
            collect_stats: false,
            ..MipIndexConfig::default()
        },
    )
    .expect("valid scenario config");
    let samples = calibration_queries(&baseline_system, &spec, 3);
    baseline_system
        .calibrate(&samples)
        .expect("calibration queries are valid");
    assert!(baseline_system.index().catalog().is_none());

    let catalog = evaluate(&catalog_system, "catalog", &spec.minsupps, spec.minconf);
    let baseline = evaluate(
        &baseline_system,
        "global_fallback",
        &spec.minsupps,
        spec.minconf,
    );
    assert!(
        catalog.catalog_term_fraction > 0.99,
        "catalog system predicted from the fallback"
    );
    assert!(
        baseline.catalog_term_fraction == 0.0,
        "baseline system predicted from a catalog"
    );

    let acceptance = Acceptance {
        catalog_max_median_abs_log10: 1.0,
        catalog_max_mispick_rate: 0.40,
        catalog_max_mispick_rate_over_baseline: 0.10,
    };
    let report = Report {
        description: "Cost-model prediction accuracy (|log10 est/measured| of \
                      the chosen plan) and mispick rate (chosen plan slower \
                      than 1.25x the measured-fastest) over a seeded random \
                      workload, statistics catalog vs global-average fallback \
                      on the same calibration",
        harness: "cargo run --release --bin bench_optimizer [-- OUT.json] \
                  [--check]; the catalog gates (median accuracy, absolute \
                  mispick rate, mispick rate vs baseline) exit nonzero on \
                  failure (the scripts/ci.sh --bench gate)",
        acceptance,
        systems: vec![catalog, baseline],
    };

    println!(
        "{:<16} {:>8} {:>12} {:>11} {:>9} {:>13} {:>14}",
        "system", "queries", "median log10", "worst log10", "mispicks", "mispick rate", "catalog terms"
    );
    for s in &report.systems {
        println!(
            "{:<16} {:>8} {:>12.3} {:>11.3} {:>9} {:>12.1}% {:>13.0}%",
            s.name,
            s.queries,
            s.median_abs_log10,
            s.worst_abs_log10,
            s.mispicks,
            s.mispick_rate * 100.0,
            s.catalog_term_fraction * 100.0
        );
    }
    if !check_only {
        let json = serde_json::to_string_pretty(&report).expect("serializable");
        std::fs::write(&out_path, json).expect("write BENCH_optimizer.json");
        println!("\nwrote {out_path}");
    }

    let cat = &report.systems[0];
    let base = &report.systems[1];
    let mut failures = Vec::new();
    if cat.median_abs_log10 > report.acceptance.catalog_max_median_abs_log10 {
        failures.push(format!(
            "catalog median |log10| {:.3} > allowed {:.3}",
            cat.median_abs_log10, report.acceptance.catalog_max_median_abs_log10
        ));
    }
    if cat.mispick_rate > report.acceptance.catalog_max_mispick_rate {
        failures.push(format!(
            "catalog mispick rate {:.2} > allowed {:.2}",
            cat.mispick_rate, report.acceptance.catalog_max_mispick_rate
        ));
    }
    if cat.mispick_rate > base.mispick_rate + report.acceptance.catalog_max_mispick_rate_over_baseline
    {
        failures.push(format!(
            "catalog mispick rate {:.2} > baseline {:.2} + {:.2}",
            cat.mispick_rate,
            base.mispick_rate,
            report.acceptance.catalog_max_mispick_rate_over_baseline
        ));
    }
    if !failures.is_empty() {
        eprintln!("\nbench gate FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("bench gate: optimizer accuracy green");
}
