//! Engine-dispatch benchmark: the streaming operator engine
//! (`execute_plan_with`, batched `PlanOp` pipeline with per-batch
//! cancellation checks) against the hand-wired free-function pipelines it
//! replaced, per plan, on the Table 1 salary dataset and the mushroom
//! analog. Writes `BENCH_engine.json`.
//!
//! ```text
//! cargo run --release --bin bench_engine [-- OUT.json]
//! ```
//!
//! The acceptance gate this file documents: engine overhead ≤5% on the
//! salary end-to-end walkthrough (the worst case for dispatch overhead —
//! eleven records, so fixed costs dominate). Both paths must also agree
//! on rules and unit totals, which this binary asserts on every run.

use colarm::mine::rules::Rule;
use colarm::ops::{self, ExecOptions};
use colarm::plan::execute_plan_with;
use colarm::{LocalizedQuery, MipIndex, MipIndexConfig, PlanKind};
use colarm_bench::{build_system, mushroom_spec, random_subset_spec, Scale};
use colarm_data::FocalSubset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// The pre-engine executor: the six pipelines hand-wired from the public
/// `ops::` free functions (kept as the reference path), with the shared
/// rule-ordering epilogue.
fn reference_execute(
    index: &MipIndex,
    query: &LocalizedQuery,
    subset: &FocalSubset,
    plan: PlanKind,
    opts: ExecOptions,
) -> Vec<Rule> {
    let minsupp_count = query.minsupp_count(subset.len());
    let minconf = query.minconf;
    let mut rules = match plan {
        PlanKind::Sev => {
            let (cands, _) = ops::search(index, subset);
            let (kept, _) = ops::eliminate_with(index, query, subset, cands, minsupp_count, opts);
            ops::verify_with(index, subset, &kept, minconf, opts).0
        }
        PlanKind::Svs => {
            let (cands, _) = ops::search(index, subset);
            ops::supported_verify_with(index, query, subset, cands, minsupp_count, minconf, opts).0
        }
        PlanKind::SsEv => {
            let (cands, _) = ops::supported_search(index, subset, minsupp_count);
            let (kept, _) = ops::eliminate_with(index, query, subset, cands, minsupp_count, opts);
            ops::verify_with(index, subset, &kept, minconf, opts).0
        }
        PlanKind::SsVs => {
            let (cands, _) = ops::supported_search(index, subset, minsupp_count);
            ops::supported_verify_with(index, query, subset, cands, minsupp_count, minconf, opts).0
        }
        PlanKind::SsEuv => {
            let (cands, _) = ops::supported_search(index, subset, minsupp_count);
            let (contained, partial, _) = ops::classify(index, query, subset, cands);
            let (kept_partial, _) =
                ops::eliminate_projected_with(index, subset, partial, minsupp_count, opts);
            let (merged, _) = ops::union_lists(contained, kept_partial);
            ops::verify_with(index, subset, &merged, minconf, opts).0
        }
        PlanKind::Arm => {
            let (columns, _) = ops::select_with(index, query, subset, opts);
            ops::arm_with(index, query, subset, &columns, minsupp_count, minconf, opts).0
        }
    };
    rules.sort_by(|a, b| (&a.antecedent, &a.consequent).cmp(&(&b.antecedent, &b.consequent)));
    rules
}

/// Best of `reps` wall-clock timings of `f`.
fn best_of<T, F: FnMut() -> T>(reps: usize, mut f: F) -> f64 {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

#[derive(Serialize)]
struct PlanRow {
    plan: &'static str,
    rules: usize,
    reference_s: f64,
    engine_s: f64,
    /// engine_s / reference_s − 1 (negative = engine faster).
    overhead: f64,
}

#[derive(Serialize)]
struct Scenario {
    name: &'static str,
    records: usize,
    subset_records: usize,
    reps: usize,
    plans: Vec<PlanRow>,
    /// Summed across the six plans — the end-to-end budget figure.
    end_to_end_reference_s: f64,
    end_to_end_engine_s: f64,
    end_to_end_overhead: f64,
}

#[derive(Serialize)]
struct Report {
    description: &'static str,
    budget: &'static str,
    scenarios: Vec<Scenario>,
}

fn bench(
    name: &'static str,
    index: &MipIndex,
    query: &LocalizedQuery,
    subset: &FocalSubset,
    reps: usize,
) -> Scenario {
    let opts = ExecOptions::with_threads(1);
    let mut plans = Vec::new();
    for plan in PlanKind::ALL {
        // Equivalence first: the benchmark is meaningless if the two
        // paths compute different answers.
        let engine_answer = execute_plan_with(index, query, subset, plan, opts).expect("runs");
        let ref_rules = reference_execute(index, query, subset, plan, opts);
        assert_eq!(engine_answer.rules, ref_rules, "{name}/{plan}: paths diverged");

        let reference_s = best_of(reps, || reference_execute(index, query, subset, plan, opts));
        let engine_s = best_of(reps, || {
            execute_plan_with(index, query, subset, plan, opts).expect("runs")
        });
        plans.push(PlanRow {
            plan: plan.name(),
            rules: ref_rules.len(),
            reference_s,
            engine_s,
            overhead: engine_s / reference_s - 1.0,
        });
    }
    let end_to_end_reference_s: f64 = plans.iter().map(|p| p.reference_s).sum();
    let end_to_end_engine_s: f64 = plans.iter().map(|p| p.engine_s).sum();
    Scenario {
        name,
        records: index.dataset().num_records(),
        subset_records: subset.len(),
        reps,
        plans,
        end_to_end_reference_s,
        end_to_end_engine_s,
        end_to_end_overhead: end_to_end_engine_s / end_to_end_reference_s - 1.0,
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_engine.json".to_string());

    let salary_index = MipIndex::build(
        colarm_data::synth::salary(),
        MipIndexConfig {
            primary_support: 2.0 / 11.0,
            ..Default::default()
        },
    )
    .expect("salary index");
    let salary_schema = salary_index.dataset().schema().clone();
    let salary_query = LocalizedQuery::builder()
        .range_named(&salary_schema, "Location", &["Seattle"])
        .expect("known attribute")
        .range_named(&salary_schema, "Gender", &["F"])
        .expect("known attribute")
        .minsupp(0.75)
        .minconf(0.9)
        .build()
        .expect("valid query");
    let salary_subset = salary_index
        .resolve_subset(salary_query.range.clone())
        .expect("subset resolves");

    let mushroom = build_system(&mushroom_spec(Scale::Fast));
    let mut rng = StdRng::seed_from_u64(11);
    let (range, mushroom_subset) = random_subset_spec(
        mushroom.index().dataset(),
        mushroom.index().vertical(),
        0.10,
        &mut rng,
    );
    let spec = mushroom_spec(Scale::Fast);
    let mushroom_query = LocalizedQuery::builder()
        .range(range)
        .minsupp(spec.minsupps[0])
        .minconf(spec.minconf)
        .build()
        .expect("valid query");

    let report = Report {
        description: "Streaming operator engine (execute_plan_with) vs the \
                      hand-wired ops:: free-function pipelines, per plan, \
                      sequential execution (best of N reps)",
        budget: "end_to_end_overhead <= 0.05 on the salary scenario",
        scenarios: vec![
            bench("salary_table1", &salary_index, &salary_query, &salary_subset, 200),
            bench(
                "mushroom_fast",
                mushroom.index(),
                &mushroom_query,
                &mushroom_subset,
                5,
            ),
        ],
    };

    for s in &report.scenarios {
        println!(
            "{} ({} records, subset {}):",
            s.name, s.records, s.subset_records
        );
        println!(
            "  {:<10} {:>6} {:>14} {:>14} {:>9}",
            "plan", "rules", "reference s", "engine s", "overhead"
        );
        for p in &s.plans {
            println!(
                "  {:<10} {:>6} {:>14.6} {:>14.6} {:>8.1}%",
                p.plan,
                p.rules,
                p.reference_s,
                p.engine_s,
                p.overhead * 100.0
            );
        }
        println!(
            "  end-to-end: {:.6}s vs {:.6}s → {:+.1}%\n",
            s.end_to_end_reference_s,
            s.end_to_end_engine_s,
            s.end_to_end_overhead * 100.0
        );
    }
    let json = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write(&out_path, json).expect("write BENCH_engine.json");
    println!("wrote {out_path}");
}
