//! Rule interestingness measures.
//!
//! COLARM verifies both minsupport and minconfidence online (paper §1.3,
//! motivated by the importance of null-invariant measures \[23\]); the
//! additional measures here — lift, leverage, conviction and the
//! null-invariant cosine — are provided for rule analysis in the examples
//! and the Simpson's-paradox study.

/// Counts needed to evaluate a rule `X ⇒ Y` in some context (the whole
/// dataset or a focal subset). Serialized inside wire rules (the server's
/// `QueryOutcome`), so the field names are wire-stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RuleCounts {
    /// `|t(X ∪ Y)|` — records containing the whole rule body.
    pub body: usize,
    /// `|t(X)|` — records containing the antecedent.
    pub antecedent: usize,
    /// `|t(Y)|` — records containing the consequent.
    pub consequent: usize,
    /// Context size (`|D|` or `|DQ|`).
    pub universe: usize,
}

impl RuleCounts {
    /// Relative support `supp(X ∪ Y)`.
    pub fn support(&self) -> f64 {
        ratio(self.body, self.universe)
    }

    /// Confidence `supp(X ∪ Y) / supp(X)`.
    pub fn confidence(&self) -> f64 {
        ratio(self.body, self.antecedent)
    }

    /// Lift `conf / supp(Y)`; 1.0 means independence.
    pub fn lift(&self) -> f64 {
        let cons = ratio(self.consequent, self.universe);
        if cons == 0.0 {
            return 0.0;
        }
        self.confidence() / cons
    }

    /// Leverage `supp(XY) − supp(X)·supp(Y)`.
    pub fn leverage(&self) -> f64 {
        self.support()
            - ratio(self.antecedent, self.universe) * ratio(self.consequent, self.universe)
    }

    /// Conviction `(1 − supp(Y)) / (1 − conf)`; `+∞` for exact rules.
    pub fn conviction(&self) -> f64 {
        let conf = self.confidence();
        if conf >= 1.0 {
            return f64::INFINITY;
        }
        (1.0 - ratio(self.consequent, self.universe)) / (1.0 - conf)
    }

    /// Cosine `supp(XY) / sqrt(supp(X)·supp(Y))` — a null-invariant
    /// measure \[23\].
    pub fn cosine(&self) -> f64 {
        let denom =
            (ratio(self.antecedent, self.universe) * ratio(self.consequent, self.universe)).sqrt();
        if denom == 0.0 {
            return 0.0;
        }
        self.support() / denom
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The paper's RG: body 5, antecedent 6, consequent 8, universe 11.
    fn rg() -> RuleCounts {
        RuleCounts {
            body: 5,
            antecedent: 6,
            consequent: 8,
            universe: 11,
        }
    }

    #[test]
    fn paper_rg_support_and_confidence() {
        let c = rg();
        assert!((c.support() - 5.0 / 11.0).abs() < 1e-12); // 45 %
        assert!((c.confidence() - 5.0 / 6.0).abs() < 1e-12); // 83 %
    }

    #[test]
    fn lift_and_leverage_detect_dependence() {
        let c = rg();
        let expected_lift = (5.0 / 6.0) / (8.0 / 11.0);
        assert!((c.lift() - expected_lift).abs() < 1e-12);
        assert!(c.leverage() > 0.0, "RG is positively correlated");
    }

    #[test]
    fn conviction_of_exact_rule_is_infinite() {
        let c = RuleCounts {
            body: 3,
            antecedent: 3,
            consequent: 9,
            universe: 12,
        };
        assert_eq!(c.confidence(), 1.0);
        assert!(c.conviction().is_infinite());
    }

    #[test]
    fn degenerate_contexts_do_not_divide_by_zero() {
        let c = RuleCounts {
            body: 0,
            antecedent: 0,
            consequent: 0,
            universe: 0,
        };
        assert_eq!(c.support(), 0.0);
        assert_eq!(c.confidence(), 0.0);
        assert_eq!(c.lift(), 0.0);
        assert_eq!(c.cosine(), 0.0);
    }

    #[test]
    fn cosine_is_null_invariant_shape() {
        // Cosine must not change when universe grows with null records
        // (records containing neither X nor Y).
        let a = RuleCounts {
            body: 4,
            antecedent: 5,
            consequent: 6,
            universe: 20,
        };
        let b = RuleCounts {
            universe: 2000,
            ..a
        };
        assert!((a.cosine() - b.cosine()).abs() < 1e-12);
        // While lift is not.
        assert!((a.lift() - b.lift()).abs() > 1.0);
    }
}
