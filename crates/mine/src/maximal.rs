//! Maximal frequent itemsets — the third condensed representation from the
//! survey the paper builds on (Calders–Rigotti–Boulicaut \[7\]): frequent
//! itemsets with no frequent proper superset. Maximal sets are a strict
//! subset of the closed sets and bound the frequent lattice from above;
//! COLARM's MIP-index stores closed sets (supports stay recoverable), but
//! maximal sets are useful for summarising what an index *covers*.

use crate::charm::ClosedItemset;
use crate::ittree::ClosedItTree;
use crate::vertical::ItemTids;

/// Mine the maximal frequent itemsets directly from a vertical database.
pub fn maximal(columns: &[ItemTids], min_count: usize) -> Vec<ClosedItemset> {
    let closed = crate::charm::charm(columns, min_count);
    let num_items = columns
        .iter()
        .map(|c| c.item.index() + 1)
        .max()
        .unwrap_or(0);
    maximal_from_closed(closed, num_items)
}

/// Filter a set of closed frequent itemsets down to the maximal ones.
///
/// Every maximal frequent itemset is closed (its closure cannot be a
/// frequent strict superset), so filtering the closed sets is exhaustive:
/// a closed set is maximal iff no *other* closed set strictly contains it.
pub fn maximal_from_closed(closed: Vec<ClosedItemset>, num_items: usize) -> Vec<ClosedItemset> {
    let universe = closed
        .iter()
        .flat_map(|c| c.tids.iter())
        .max()
        .map(|t| t + 1)
        .unwrap_or(0);
    let tree = ClosedItTree::build(closed, num_items, universe);
    let mut out = Vec::new();
    for (id, cfi) in tree.iter() {
        // Supersets of `cfi` among closed sets = entries containing all of
        // its items; the tree's closure machinery already intersects the
        // inverted lists, so probe with the itemset itself and check
        // whether anything besides `cfi` contains it.
        let has_strict_superset = cfi.itemset.items().iter().next().is_some() && {
            let mut found = false;
            // Walk candidates containing the first item and test cheaply.
            for (other_id, other) in tree.iter() {
                if other_id != id
                    && other.itemset.len() > cfi.itemset.len()
                    && cfi.itemset.is_subset_of(&other.itemset)
                {
                    found = true;
                    break;
                }
            }
            found
        };
        if !has_strict_superset {
            out.push(cfi.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::brute_force_frequent;
    use crate::vertical::full_vertical;
    use colarm_data::synth::salary;
    use colarm_data::VerticalIndex;

    #[test]
    fn maximal_sets_match_brute_force() {
        let d = salary();
        let v = VerticalIndex::build(&d);
        let cols = full_vertical(&v);
        for min_count in [2usize, 3, 4] {
            let frequent = brute_force_frequent(&v, min_count);
            let mut expected: Vec<_> = frequent
                .iter()
                .filter(|f| {
                    !frequent
                        .iter()
                        .any(|g| g.itemset.len() > f.itemset.len()
                            && f.itemset.is_subset_of(&g.itemset))
                })
                .map(|f| (f.itemset.clone(), f.tids.len()))
                .collect();
            expected.sort();
            let mut got: Vec<_> = maximal(&cols, min_count)
                .into_iter()
                .map(|c| (c.itemset, c.tids.len()))
                .collect();
            got.sort();
            assert_eq!(got, expected, "min_count {min_count}");
        }
    }

    #[test]
    fn maximal_is_subset_of_closed() {
        let d = salary();
        let v = VerticalIndex::build(&d);
        let cols = full_vertical(&v);
        let closed = crate::charm::charm(&cols, 2);
        let max = maximal(&cols, 2);
        assert!(max.len() < closed.len());
        for m in &max {
            assert!(
                closed.iter().any(|c| c.itemset == m.itemset),
                "maximal set {} must be closed",
                m.itemset
            );
        }
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(maximal(&[], 1).is_empty());
    }
}
