//! Eclat: all-frequent-itemset mining over vertical tid-lists.
//!
//! Depth-first equivalence-class search with tidset intersections — the
//! vertical counterpart of Apriori. COLARM uses Eclat as a measurement
//! baseline and as a cross-check for CHARM (every closed set is frequent;
//! every frequent set's closure is a mined closed set).

use crate::charm::ClosedItemset;
use crate::vertical::ItemTids;
use colarm_data::{Itemset, Tidset};

/// Mine all frequent itemsets (absolute support ≥ `min_count`).
///
/// Returns itemsets with exact tidsets, in no particular order. The output
/// can be exponentially larger than CHARM's closed-set output on dense
/// data — that gap is precisely why the MIP-index stores closed sets
/// (paper §3.2).
pub fn eclat(columns: &[ItemTids], min_count: usize) -> Vec<ClosedItemset> {
    assert!(min_count >= 1, "min_count must be at least 1");
    let mut roots: Vec<(Itemset, Tidset)> = columns
        .iter()
        .filter(|c| c.tids.len() >= min_count)
        .map(|c| (Itemset::singleton(c.item), c.tids.clone()))
        .collect();
    roots.sort_by_key(|(_, t)| t.len());
    let mut out = Vec::new();
    eclat_extend(&roots, min_count, &mut out);
    out
}

fn eclat_extend(class: &[(Itemset, Tidset)], min_count: usize, out: &mut Vec<ClosedItemset>) {
    for (i, (itemset, tids)) in class.iter().enumerate() {
        let mut child_class = Vec::new();
        for (other_set, other_tids) in &class[i + 1..] {
            let joined = tids.intersect(other_tids);
            if joined.len() >= min_count {
                child_class.push((itemset.union(other_set), joined));
            }
        }
        if !child_class.is_empty() {
            eclat_extend(&child_class, min_count, out);
        }
        out.push(ClosedItemset {
            itemset: itemset.clone(),
            tids: tids.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::brute_force_frequent;
    use crate::vertical::full_vertical;
    use colarm_data::synth::salary;
    use colarm_data::VerticalIndex;

    fn sorted(mut v: Vec<ClosedItemset>) -> Vec<(Itemset, usize)> {
        let mut out: Vec<(Itemset, usize)> =
            v.drain(..).map(|c| (c.itemset, c.tids.len())).collect();
        out.sort();
        out
    }

    #[test]
    fn matches_brute_force_on_salary() {
        let d = salary();
        let v = VerticalIndex::build(&d);
        let cols = full_vertical(&v);
        for min_count in [2usize, 3, 5] {
            assert_eq!(
                sorted(eclat(&cols, min_count)),
                sorted(brute_force_frequent(&v, min_count)),
                "min_count {min_count}"
            );
        }
    }

    #[test]
    fn eclat_output_contains_charm_output() {
        let d = salary();
        let v = VerticalIndex::build(&d);
        let cols = full_vertical(&v);
        let frequent = sorted(eclat(&cols, 2));
        for c in crate::charm::charm(&cols, 2) {
            let key = (c.itemset.clone(), c.tids.len());
            assert!(frequent.binary_search(&key).is_ok(), "missing {}", c.itemset);
        }
    }
}
