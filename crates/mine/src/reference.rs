//! Brute-force reference miners used as oracles in tests.
//!
//! These are deliberately simple and obviously correct: enumerate the
//! itemset lattice depth-first with tidset intersections, no pruning
//! cleverness beyond downward closure. Only run them on small inputs.

use crate::charm::ClosedItemset;
use colarm_data::{ItemId, Itemset, Tidset, VerticalIndex};

/// All frequent itemsets (absolute support ≥ `min_count`) with tidsets.
pub fn brute_force_frequent(vertical: &VerticalIndex, min_count: usize) -> Vec<ClosedItemset> {
    assert!(min_count >= 1);
    let items: Vec<(ItemId, &Tidset)> = (0..vertical.num_items() as u32)
        .map(ItemId)
        .map(|i| (i, vertical.tids(i)))
        .filter(|(_, t)| t.len() >= min_count)
        .collect();
    let mut out = Vec::new();
    let mut stack: Vec<(usize, Itemset, Tidset)> = items
        .iter()
        .enumerate()
        .map(|(pos, (i, t))| (pos, Itemset::singleton(*i), (*t).clone()))
        .collect();
    while let Some((pos, itemset, tids)) = stack.pop() {
        for (next_pos, (i, t)) in items.iter().enumerate().skip(pos + 1) {
            let extended = tids.intersect(t);
            if extended.len() >= min_count {
                stack.push((next_pos, itemset.with_item(*i), extended));
            }
        }
        out.push(ClosedItemset { itemset, tids });
    }
    out
}

/// All **closed** frequent itemsets: frequent itemsets not extendable by
/// any outside item without losing support.
pub fn brute_force_closed(vertical: &VerticalIndex, min_count: usize) -> Vec<ClosedItemset> {
    brute_force_frequent(vertical, min_count)
        .into_iter()
        .filter(|c| is_closed(vertical, c))
        .collect()
}

/// True when no item outside the set is shared by all its records.
pub fn is_closed(vertical: &VerticalIndex, candidate: &ClosedItemset) -> bool {
    (0..vertical.num_items() as u32).map(ItemId).all(|i| {
        candidate.itemset.contains(i) || !candidate.tids.is_subset_of(vertical.tids(i))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use colarm_data::synth::salary;

    #[test]
    fn frequent_superset_of_closed() {
        let d = salary();
        let v = VerticalIndex::build(&d);
        let freq = brute_force_frequent(&v, 2);
        let closed = brute_force_closed(&v, 2);
        assert!(closed.len() < freq.len());
        // Every closed set is among the frequent ones.
        for c in &closed {
            assert!(freq.iter().any(|f| f.itemset == c.itemset));
        }
        // Every frequent itemset's support is witnessed by a closed
        // superset with the same tidset (the closure).
        for f in &freq {
            assert!(
                closed
                    .iter()
                    .any(|c| f.itemset.is_subset_of(&c.itemset) && c.tids == f.tids),
                "no closure found for {}",
                f.itemset
            );
        }
    }

    #[test]
    fn min_count_filters() {
        let d = salary();
        let v = VerticalIndex::build(&d);
        for c in brute_force_frequent(&v, 3) {
            assert!(c.support() >= 3);
        }
    }
}
