//! Itemset-mining substrate for COLARM (EDBT 2014).
//!
//! COLARM's offline phase mines **closed frequent itemsets** (CFIs) at a
//! primary support threshold with the CHARM algorithm \[24\] and stores them
//! in a closed IT-tree; its online ARM baseline plan re-runs the same miner
//! over the extracted focal subset (§4.6). None of this exists as a usable
//! offline crate, so the substrate is hand-rolled:
//!
//! * [`charm`][mod@charm] — CHARM closed-itemset mining over vertical tid-lists with
//!   Zaki–Hsiao's four IT-pair properties and hash-based subsumption.
//! * [`eclat`] — vertical all-frequent-itemset mining (cross-check and
//!   measurement baseline).
//! * [`apriori`] — classic horizontal level-wise mining (second baseline).
//! * [`reference`][mod@reference] — brute-force closed/frequent miners used as oracles by
//!   the property tests.
//! * [`maximal`] — maximal-frequent-itemset filtering (the third
//!   condensed representation of \[7\]).
//! * [`ittree`] — the closed itemset–tidset tree: closure lookup (the key
//!   to computing any itemset's local support from prestored CFIs) and
//!   level organisation (paper Lemma 4.3).
//! * [`rules`] — rule generation (`ap-genrules` with confidence pruning)
//!   parameterized by a [`rules::SupportOracle`], so the same machinery
//!   serves global mining and COLARM's focal-subset VERIFY operator.
//! * [`measures`] — support, confidence, lift, leverage and conviction.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod apriori;
pub mod charm;
pub mod eclat;
pub mod ittree;
pub mod maximal;
pub mod measures;
pub mod reference;
pub mod rules;
pub mod vertical;

pub use charm::{charm, charm_par, ClosedItemset};
pub use ittree::{CfiId, ClosedItTree};
pub use rules::{Rule, SupportOracle};
pub use vertical::ItemTids;
