//! Vertical mining inputs: `(item, tid-list)` pairs.
//!
//! CHARM and Eclat consume a vertical database. Helpers here build one from
//! a dataset's [`VerticalIndex`], optionally restricted to a subset of
//! records (COLARM's ARM plan mines the extracted focal subset from
//! scratch) and/or to the items of selected attributes (the query's
//! `Aitem` clause).

use colarm_data::{AttributeId, Dataset, ItemId, Tidset, VerticalIndex};

/// One vertical-database column: an item and the records containing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemTids {
    /// The item.
    pub item: ItemId,
    /// Records containing the item, sorted.
    pub tids: Tidset,
}

/// Build the full vertical database of a dataset.
pub fn full_vertical(vertical: &VerticalIndex) -> Vec<ItemTids> {
    (0..vertical.num_items() as u32)
        .map(|i| ItemTids {
            item: ItemId(i),
            tids: vertical.tids(ItemId(i)).clone(),
        })
        .collect()
}

/// Build a vertical database restricted to the records of `subset` and
/// (optionally) to the items of `item_attrs`. Tid-lists are intersected
/// with the subset, so supports computed downstream are *local* supports.
pub fn restricted_vertical(
    dataset: &Dataset,
    vertical: &VerticalIndex,
    subset: Option<&Tidset>,
    item_attrs: Option<&[AttributeId]>,
) -> Vec<ItemTids> {
    restricted_vertical_par(dataset, vertical, subset, item_attrs, 1)
}

/// [`restricted_vertical`] with the per-item subset intersections spread
/// across up to `threads` workers (`0` = session default, `1` =
/// sequential). Column order is by item id either way.
pub fn restricted_vertical_par(
    dataset: &Dataset,
    vertical: &VerticalIndex,
    subset: Option<&Tidset>,
    item_attrs: Option<&[AttributeId]>,
    threads: usize,
) -> Vec<ItemTids> {
    let schema = dataset.schema();
    let wanted = |item: ItemId| -> bool {
        match item_attrs {
            None => true,
            Some(attrs) => attrs.contains(&schema.item_attribute(item)),
        }
    };
    let items: Vec<ItemId> = (0..vertical.num_items() as u32)
        .map(ItemId)
        .filter(|&i| wanted(i))
        .collect();
    // Below ~64 columns the intersections are cheaper than thread setup.
    let threads = if items.len() < 64 {
        1
    } else {
        colarm_data::par::resolve_threads(threads)
    };
    colarm_data::par::parallel_map(&items, threads, |_, &i| ItemTids {
        item: i,
        tids: match subset {
            None => vertical.tids(i).clone(),
            Some(s) => vertical.tids(i).intersect(s),
        },
    })
    .into_iter()
    .filter(|it| !it.tids.is_empty())
    .collect()
}

/// Derive the restricted vertical database of a *refined* subset from a
/// parent materialization: intersect each parent column with the refined
/// tidset and drop emptied columns, instead of probing every global
/// tid-list again. Requires `refined ⊆ parent-subset` and the same item
/// restriction the parent columns were built with; then the output is
/// **bit-identical** to
/// `restricted_vertical_par(…, Some(refined), same attrs, …)` — for
/// `r ⊆ p`, `(g ∩ p) ∩ r = g ∩ r`, column order is inherited (item-id
/// ascending), and tidset representations are a pure function of content.
pub fn derive_restricted_par(
    parent: &[ItemTids],
    refined: &Tidset,
    threads: usize,
) -> Vec<ItemTids> {
    // Same parallelism threshold as the fresh scan: below ~64 columns the
    // intersections are cheaper than handing work to the pool.
    let threads = if parent.len() < 64 {
        1
    } else {
        colarm_data::par::resolve_threads(threads)
    };
    colarm_data::par::parallel_map(parent, threads, |_, col| ItemTids {
        item: col.item,
        tids: col.tids.intersect(refined),
    })
    .into_iter()
    .filter(|it| !it.tids.is_empty())
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use colarm_data::synth::salary;

    #[test]
    fn full_vertical_covers_all_items() {
        let d = salary();
        let v = VerticalIndex::build(&d);
        let cols = full_vertical(&v);
        assert_eq!(cols.len(), d.schema().num_items());
        let total: usize = cols.iter().map(|c| c.tids.len()).sum();
        assert_eq!(total, d.num_records() * d.schema().num_attributes());
    }

    #[test]
    fn restriction_by_subset_and_attrs() {
        let d = salary();
        let v = VerticalIndex::build(&d);
        let s = d.schema();
        let subset = Tidset::from_sorted(vec![7, 8, 9, 10]); // Seattle women
        let age = s.attribute_by_name("Age").unwrap();
        let cols = restricted_vertical(&d, &v, Some(&subset), Some(&[age]));
        // Only Age items, only those present in the subset: 30-40 (3 recs)
        // and 20-30 (1 rec).
        assert_eq!(cols.len(), 2);
        for c in &cols {
            assert_eq!(s.item_attribute(c.item), age);
            assert!(c.tids.is_subset_of(&subset));
        }
        let total: usize = cols.iter().map(|c| c.tids.len()).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn derived_columns_match_fresh_scan_bit_for_bit() {
        let d = salary();
        let v = VerticalIndex::build(&d);
        let parent_subset = Tidset::from_sorted(vec![4, 5, 6, 7, 8, 9, 10]); // Seattle
        let refined = Tidset::from_sorted(vec![7, 8, 9, 10]); // Seattle women
        for attrs in [None, Some(vec![d.schema().attribute_by_name("Age").unwrap()])] {
            for threads in [1usize, 2, 8] {
                let parent = restricted_vertical_par(
                    &d,
                    &v,
                    Some(&parent_subset),
                    attrs.as_deref(),
                    threads,
                );
                let derived = derive_restricted_par(&parent, &refined, threads);
                let fresh =
                    restricted_vertical_par(&d, &v, Some(&refined), attrs.as_deref(), threads);
                assert_eq!(derived, fresh, "attrs={attrs:?} threads={threads}");
                for (a, b) in derived.iter().zip(&fresh) {
                    assert_eq!(a.tids.kind(), b.tids.kind(), "repr drifted");
                }
            }
        }
    }
}
