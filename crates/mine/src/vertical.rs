//! Vertical mining inputs: `(item, tid-list)` pairs.
//!
//! CHARM and Eclat consume a vertical database. Helpers here build one from
//! a dataset's [`VerticalIndex`], optionally restricted to a subset of
//! records (COLARM's ARM plan mines the extracted focal subset from
//! scratch) and/or to the items of selected attributes (the query's
//! `Aitem` clause).

use colarm_data::{AttributeId, Dataset, ItemId, Tidset, VerticalIndex};

/// One vertical-database column: an item and the records containing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemTids {
    /// The item.
    pub item: ItemId,
    /// Records containing the item, sorted.
    pub tids: Tidset,
}

/// Build the full vertical database of a dataset.
pub fn full_vertical(vertical: &VerticalIndex) -> Vec<ItemTids> {
    (0..vertical.num_items() as u32)
        .map(|i| ItemTids {
            item: ItemId(i),
            tids: vertical.tids(ItemId(i)).clone(),
        })
        .collect()
}

/// Build a vertical database restricted to the records of `subset` and
/// (optionally) to the items of `item_attrs`. Tid-lists are intersected
/// with the subset, so supports computed downstream are *local* supports.
pub fn restricted_vertical(
    dataset: &Dataset,
    vertical: &VerticalIndex,
    subset: Option<&Tidset>,
    item_attrs: Option<&[AttributeId]>,
) -> Vec<ItemTids> {
    restricted_vertical_par(dataset, vertical, subset, item_attrs, 1)
}

/// [`restricted_vertical`] with the per-item subset intersections spread
/// across up to `threads` workers (`0` = session default, `1` =
/// sequential). Column order is by item id either way.
pub fn restricted_vertical_par(
    dataset: &Dataset,
    vertical: &VerticalIndex,
    subset: Option<&Tidset>,
    item_attrs: Option<&[AttributeId]>,
    threads: usize,
) -> Vec<ItemTids> {
    let schema = dataset.schema();
    let wanted = |item: ItemId| -> bool {
        match item_attrs {
            None => true,
            Some(attrs) => attrs.contains(&schema.item_attribute(item)),
        }
    };
    let items: Vec<ItemId> = (0..vertical.num_items() as u32)
        .map(ItemId)
        .filter(|&i| wanted(i))
        .collect();
    // Below ~64 columns the intersections are cheaper than thread setup.
    let threads = if items.len() < 64 {
        1
    } else {
        colarm_data::par::resolve_threads(threads)
    };
    colarm_data::par::parallel_map(&items, threads, |_, &i| ItemTids {
        item: i,
        tids: match subset {
            None => vertical.tids(i).clone(),
            Some(s) => vertical.tids(i).intersect(s),
        },
    })
    .into_iter()
    .filter(|it| !it.tids.is_empty())
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use colarm_data::synth::salary;

    #[test]
    fn full_vertical_covers_all_items() {
        let d = salary();
        let v = VerticalIndex::build(&d);
        let cols = full_vertical(&v);
        assert_eq!(cols.len(), d.schema().num_items());
        let total: usize = cols.iter().map(|c| c.tids.len()).sum();
        assert_eq!(total, d.num_records() * d.schema().num_attributes());
    }

    #[test]
    fn restriction_by_subset_and_attrs() {
        let d = salary();
        let v = VerticalIndex::build(&d);
        let s = d.schema();
        let subset = Tidset::from_sorted(vec![7, 8, 9, 10]); // Seattle women
        let age = s.attribute_by_name("Age").unwrap();
        let cols = restricted_vertical(&d, &v, Some(&subset), Some(&[age]));
        // Only Age items, only those present in the subset: 30-40 (3 recs)
        // and 20-30 (1 rec).
        assert_eq!(cols.len(), 2);
        for c in &cols {
            assert_eq!(s.item_attribute(c.item), age);
            assert!(c.tids.is_subset_of(&subset));
        }
        let total: usize = cols.iter().map(|c| c.tids.len()).sum();
        assert_eq!(total, 4);
    }
}
