//! The closed IT-tree: COLARM's prestored closed-itemset store (paper §3.3).
//!
//! The IT-tree holds every closed frequent itemset mined at the primary
//! support threshold, organized two ways:
//!
//! * **by level** — level `i` holds the CFIs of length `i` (paper Lemma
//!   4.3: "the level of the IT-tree at which an itemset exists equals the
//!   number of singleton items composing it");
//! * **by item** — an inverted list from each item to the CFIs containing
//!   it, which powers the *closure lookup*: for any itemset `X` whose
//!   global support meets the primary threshold, `closure(X)` is the CFI
//!   `⊇ X` with maximal support, and `t(X) = t(closure(X))`. This is how
//!   the VERIFY operator computes local antecedent supports from
//!   prestored tidsets alone.

use crate::charm::ClosedItemset;
use colarm_data::{Itemset, Tidset};
use std::collections::HashMap;

/// Identifier of a CFI within a [`ClosedItTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CfiId(pub u32);

impl CfiId {
    /// The id as a usable index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The closed itemset–tidset tree.
#[derive(Debug, Clone)]
pub struct ClosedItTree {
    nodes: Vec<ClosedItemset>,
    exact: HashMap<Itemset, CfiId>,
    /// `containing[item]` = sorted CFI ids whose itemsets contain `item`.
    containing: Vec<Vec<u32>>,
    /// `levels[len]` = CFI ids of itemsets with that length.
    levels: Vec<Vec<u32>>,
    universe: u32,
}

impl ClosedItTree {
    /// Build from mined CFIs. `num_items` sizes the inverted lists;
    /// `universe` is the number of records the tidsets refer to.
    pub fn build(cfis: Vec<ClosedItemset>, num_items: usize, universe: u32) -> Self {
        let mut exact = HashMap::with_capacity(cfis.len());
        let mut containing = vec![Vec::new(); num_items];
        let mut levels: Vec<Vec<u32>> = Vec::new();
        for (idx, cfi) in cfis.iter().enumerate() {
            let id = idx as u32;
            exact.insert(cfi.itemset.clone(), CfiId(id));
            for &item in cfi.itemset.items() {
                containing[item.index()].push(id);
            }
            let len = cfi.itemset.len();
            if levels.len() <= len {
                levels.resize(len + 1, Vec::new());
            }
            levels[len].push(id);
        }
        ClosedItTree {
            nodes: cfis,
            exact,
            containing,
            levels,
            universe,
        }
    }

    /// Number of stored CFIs.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no CFIs are stored.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of records the stored tidsets refer to.
    pub fn universe(&self) -> u32 {
        self.universe
    }

    /// The CFI with the given id.
    pub fn get(&self, id: CfiId) -> &ClosedItemset {
        &self.nodes[id.index()]
    }

    /// Iterate `(id, cfi)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CfiId, &ClosedItemset)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, c)| (CfiId(i as u32), c))
    }

    /// Exact lookup of a closed itemset.
    pub fn id_of(&self, itemset: &Itemset) -> Option<CfiId> {
        self.exact.get(itemset).copied()
    }

    /// Highest populated level (longest CFI length).
    pub fn max_level(&self) -> usize {
        self.levels.len().saturating_sub(1)
    }

    /// CFI ids at a level (itemset length), per Lemma 4.3.
    pub fn level(&self, len: usize) -> &[u32] {
        self.levels.get(len).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Histogram of CFI counts by length — the "distribution of CFIs by
    /// their length" the paper analyzes per dataset (§5).
    pub fn level_histogram(&self) -> Vec<usize> {
        self.levels.iter().map(Vec::len).collect()
    }

    /// The **closure** of an arbitrary itemset: the stored CFI `⊇ X` with
    /// maximal support, whose tidset equals `t(X)`. `None` when `X` is not
    /// covered (its global support is below the primary threshold) or `X`
    /// is empty.
    pub fn closure(&self, itemset: &Itemset) -> Option<CfiId> {
        let mut lists: Vec<&[u32]> = Vec::with_capacity(itemset.len());
        for &item in itemset.items() {
            lists.push(self.containing.get(item.index())?.as_slice());
        }
        if lists.is_empty() {
            return None;
        }
        // Intersect sorted id lists, starting from the shortest.
        lists.sort_by_key(|l| l.len());
        let mut acc: Vec<u32> = lists[0].to_vec();
        for l in &lists[1..] {
            if acc.is_empty() {
                return None;
            }
            acc = intersect_sorted(&acc, l);
        }
        acc.into_iter()
            .map(CfiId)
            .max_by_key(|&id| self.get(id).tids.len())
    }

    /// Global tidset of an arbitrary itemset via its closure.
    pub fn tids_of(&self, itemset: &Itemset) -> Option<&Tidset> {
        self.closure(itemset).map(|id| &self.get(id).tids)
    }

    /// Global absolute support of an arbitrary itemset via its closure.
    pub fn support_of(&self, itemset: &Itemset) -> Option<usize> {
        self.tids_of(itemset).map(Tidset::len)
    }
}

fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// A [`crate::rules::SupportOracle`] that answers support queries from a
/// [`ClosedItTree`], optionally restricted to a focal subset, memoizing
/// per-itemset results. This is exactly the paper's mechanism for local
/// threshold verification: `supp_Q(X) = |t(closure(X)) ∩ t(DQ)|`.
pub struct ClosureSupportOracle<'a> {
    tree: &'a ClosedItTree,
    focal: Option<&'a Tidset>,
    cache: HashMap<Itemset, Option<usize>>,
    universe: usize,
    stats: colarm_data::metrics::OpMetrics,
}

impl<'a> ClosureSupportOracle<'a> {
    /// Oracle for global supports (`focal = None`) or local supports
    /// w.r.t. a focal subset's tidset.
    pub fn new(tree: &'a ClosedItTree, focal: Option<&'a Tidset>) -> Self {
        let universe = match focal {
            Some(t) => t.len(),
            None => tree.universe() as usize,
        };
        ClosureSupportOracle {
            tree,
            focal,
            cache: HashMap::new(),
            universe,
            stats: colarm_data::metrics::OpMetrics::default(),
        }
    }

    /// Number of closure lookups that missed the cache (instrumentation
    /// for the cost model's VERIFY term).
    pub fn lookups(&self) -> usize {
        self.cache.len()
    }

    /// Execution counters accumulated so far: total lookups, memo hits,
    /// and the focal-tidset intersections misses triggered, classified by
    /// operand representation. Counters are exact (not sampled) and depend
    /// only on the lookup sequence, so callers folding them in input order
    /// get scheduling-independent totals.
    pub fn metrics(&self) -> colarm_data::metrics::OpMetrics {
        self.stats
    }
}

impl crate::rules::SupportOracle for ClosureSupportOracle<'_> {
    fn support_count(&mut self, itemset: &Itemset) -> Option<usize> {
        self.stats.support_lookups += 1;
        if let Some(&cached) = self.cache.get(itemset) {
            self.stats.cache_hits += 1;
            return cached;
        }
        let result = self.tree.tids_of(itemset).map(|tids| match self.focal {
            None => tids.len(),
            Some(f) => {
                self.stats.note_intersection(tids, f);
                tids.intersect_count(f)
            }
        });
        self.cache.insert(itemset.clone(), result);
        result
    }

    fn universe(&self) -> usize {
        self.universe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charm::charm;
    use crate::vertical::full_vertical;
    use colarm_data::synth::salary;
    use colarm_data::VerticalIndex;

    fn tree(min_count: usize) -> (colarm_data::Dataset, VerticalIndex, ClosedItTree) {
        let d = salary();
        let v = VerticalIndex::build(&d);
        let cfis = charm(&full_vertical(&v), min_count);
        let t = ClosedItTree::build(cfis, d.schema().num_items(), d.num_records() as u32);
        (d, v, t)
    }

    #[test]
    fn exact_lookup_round_trips() {
        let (_, _, t) = tree(2);
        for (id, cfi) in t.iter() {
            assert_eq!(t.id_of(&cfi.itemset), Some(id));
        }
        assert!(t.id_of(&Itemset::empty()).is_none());
    }

    #[test]
    fn levels_match_lengths() {
        let (_, _, t) = tree(2);
        for len in 0..=t.max_level() {
            for &id in t.level(len) {
                assert_eq!(t.get(CfiId(id)).itemset.len(), len);
            }
        }
        let total: usize = t.level_histogram().iter().sum();
        assert_eq!(total, t.len());
    }

    #[test]
    fn closure_reproduces_true_tidsets() {
        // For every subset X of every stored CFI, the closure lookup must
        // return exactly t(X) as computed from the raw data.
        let (_, v, t) = tree(2);
        for (_, cfi) in t.iter() {
            if cfi.itemset.len() > 4 {
                continue; // keep the subset enumeration small
            }
            for sub in cfi.itemset.proper_subsets() {
                let truth = v.itemset_tids(&sub);
                let got = t.tids_of(&sub).expect("subset of a CFI is covered");
                assert_eq!(got, &truth, "closure tidset mismatch for {sub}");
            }
        }
    }

    #[test]
    fn closure_of_uncovered_itemset_is_none() {
        let (d, _, t) = tree(3);
        // (Company=Facebook, Salary=30K-60K) has support 1 < primary 3.
        let s = d.schema();
        let rare = Itemset::from_items([
            s.encode_named("Company", "Facebook").unwrap(),
            s.encode_named("Salary", "30K-60K").unwrap(),
        ]);
        assert!(t.closure(&rare).is_none());
        assert!(t.support_of(&rare).is_none());
    }

    #[test]
    fn oracle_counts_local_supports() {
        use crate::rules::SupportOracle;
        let (d, _, t) = tree(2);
        let s = d.schema();
        let focal = Tidset::from_sorted(vec![7, 8, 9, 10]);
        let mut oracle = ClosureSupportOracle::new(&t, Some(&focal));
        let a1 = Itemset::singleton(s.encode_named("Age", "30-40").unwrap());
        assert_eq!(oracle.support_count(&a1), Some(3));
        assert_eq!(oracle.universe(), 4);
        // Cached second call returns the same.
        assert_eq!(oracle.support_count(&a1), Some(3));
        assert_eq!(oracle.lookups(), 1);
        // Global oracle sees the whole dataset.
        let mut global = ClosureSupportOracle::new(&t, None);
        assert_eq!(global.support_count(&a1), Some(4));
        assert_eq!(global.universe(), 11);
    }

    #[test]
    fn empty_tree_behaves() {
        let t = ClosedItTree::build(Vec::new(), 5, 10);
        assert!(t.is_empty());
        assert_eq!(t.max_level(), 0);
        assert!(t.closure(&Itemset::singleton(colarm_data::ItemId(1))).is_none());
    }
}
