//! Association-rule generation with confidence pruning (`ap-genrules`).
//!
//! Rules are generated per frequent itemset `I`: every partition
//! `I = X ∪ Y` with nonempty `X`, `Y` is a candidate rule `X ⇒ Y` with
//! `conf = supp(I) / supp(X)`. Moving items from antecedent to consequent
//! can only lower confidence, so consequents are grown level-wise from the
//! 1-item consequents that pass `minconf` (Agrawal's ap-genrules) —
//! failing consequents prune all their supersets.
//!
//! Support lookups go through a [`SupportOracle`] so the same generator
//! serves global rule mining (oracle = vertical index or IT-tree) and
//! COLARM's localized VERIFY operator (oracle = IT-tree closure lookup
//! intersected with the focal subset's tidset).

use crate::measures::RuleCounts;
use colarm_data::{Itemset, Schema};
use std::fmt;

/// Answers absolute support counts within some context.
pub trait SupportOracle {
    /// Absolute support count of `itemset` in the oracle's context, or
    /// `None` when the itemset is not covered (e.g. below the prestored
    /// primary threshold — possible only for itemsets that are not subsets
    /// of a stored CFI).
    fn support_count(&mut self, itemset: &Itemset) -> Option<usize>;

    /// Context size (`|D|` or `|DQ|`).
    fn universe(&self) -> usize;
}

/// An association rule `X ⇒ Y` with its evaluation counts. Serialized in
/// the server's `QueryOutcome` wire format (itemsets as item-id arrays,
/// counts by name), so the shape is wire-stable.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Rule {
    /// Antecedent `X`.
    pub antecedent: Itemset,
    /// Consequent `Y` (disjoint from `X`).
    pub consequent: Itemset,
    /// The counts behind support/confidence in the generation context.
    pub counts: RuleCounts,
}

impl Rule {
    /// Relative support of the whole body.
    pub fn support(&self) -> f64 {
        self.counts.support()
    }

    /// Confidence.
    pub fn confidence(&self) -> f64 {
        self.counts.confidence()
    }

    /// The full body `X ∪ Y`.
    pub fn body(&self) -> Itemset {
        self.antecedent.union(&self.consequent)
    }

    /// Schema-aware pretty printer.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> RuleDisplay<'a> {
        RuleDisplay { rule: self, schema }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} => {} [supp {:.3}, conf {:.3}]",
            self.antecedent,
            self.consequent,
            self.support(),
            self.confidence()
        )
    }
}

/// Pretty printer returned by [`Rule::display`].
pub struct RuleDisplay<'a> {
    rule: &'a Rule,
    schema: &'a Schema,
}

impl fmt::Display for RuleDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} => {} [supp {:.1}%, conf {:.1}%]",
            self.rule.antecedent.display(self.schema),
            self.rule.consequent.display(self.schema),
            self.rule.support() * 100.0,
            self.rule.confidence() * 100.0
        )
    }
}

/// Generate all rules from one frequent itemset `body` whose confidence
/// meets `min_conf`, appending to `out`.
///
/// `body_count` is the (local) support count of `body` in the oracle's
/// context. Itemsets of length < 2 yield no rules. Antecedent supports the
/// oracle cannot resolve (uncovered itemsets) conservatively drop the
/// candidate — with a correctly-built IT-tree this cannot happen, since
/// `supp(X) ≥ supp(body) ≥ primary`.
pub fn rules_for_itemset(
    body: &Itemset,
    body_count: usize,
    oracle: &mut dyn SupportOracle,
    min_conf: f64,
    out: &mut Vec<Rule>,
) {
    if body.len() < 2 || body_count == 0 {
        return;
    }
    let universe = oracle.universe();
    // Level 1: single-item consequents.
    let mut consequents: Vec<Itemset> = Vec::new();
    for &item in body.items() {
        let cons = Itemset::singleton(item);
        if let Some(rule) = evaluate(body, body_count, &cons, oracle, universe, min_conf) {
            out.push(rule);
            consequents.push(cons);
        }
    }
    // Grow consequents level-wise while antecedents stay nonempty.
    while !consequents.is_empty() {
        let next_size = consequents[0].len() + 1;
        if next_size >= body.len() {
            break;
        }
        let candidates = join_consequents(&consequents);
        consequents = Vec::new();
        for cons in candidates {
            if let Some(rule) = evaluate(body, body_count, &cons, oracle, universe, min_conf) {
                out.push(rule);
                consequents.push(cons);
            }
        }
    }
}

fn evaluate(
    body: &Itemset,
    body_count: usize,
    consequent: &Itemset,
    oracle: &mut dyn SupportOracle,
    universe: usize,
    min_conf: f64,
) -> Option<Rule> {
    let antecedent = body.minus(consequent);
    debug_assert!(!antecedent.is_empty());
    let antecedent_count = oracle.support_count(&antecedent)?;
    debug_assert!(antecedent_count >= body_count);
    // Accept on the boundary despite floating-point representation of the
    // threshold (e.g. `0.8 * 5` is slightly above 4.0 in binary).
    if antecedent_count == 0 || (body_count as f64) + 1e-9 < min_conf * antecedent_count as f64 {
        return None;
    }
    let consequent_count = oracle.support_count(consequent).unwrap_or(0);
    Some(Rule {
        antecedent,
        consequent: consequent.clone(),
        counts: RuleCounts {
            body: body_count,
            antecedent: antecedent_count,
            consequent: consequent_count,
            universe,
        },
    })
}

/// Apriori-style join of same-size consequents sharing all but the last
/// item; subset pruning is implicit because only passing consequents are
/// kept each level.
fn join_consequents(level: &[Itemset]) -> Vec<Itemset> {
    let mut out = Vec::new();
    for (i, a) in level.iter().enumerate() {
        for b in &level[i + 1..] {
            let (ia, ib) = (a.items(), b.items());
            let k = ia.len();
            if ia[..k - 1] == ib[..k - 1] && ia[k - 1] != ib[k - 1] {
                out.push(a.with_item(ib[k - 1]));
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Generate rules from many bodies at once, filtering bodies by a minimum
/// (absolute) support count first.
pub fn rules_for_itemsets<'a>(
    bodies: impl Iterator<Item = (&'a Itemset, usize)>,
    oracle: &mut dyn SupportOracle,
    min_count: usize,
    min_conf: f64,
) -> Vec<Rule> {
    let mut out = Vec::new();
    for (body, count) in bodies {
        if count >= min_count {
            rules_for_itemset(body, count, oracle, min_conf, &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charm::charm;
    use crate::ittree::{ClosedItTree, ClosureSupportOracle};
    use crate::vertical::full_vertical;
    use colarm_data::synth::salary;
    use colarm_data::{Tidset, VerticalIndex};

    /// Oracle answering directly from the vertical index (exact, for
    /// brute-force comparison).
    struct DirectOracle<'a> {
        v: &'a VerticalIndex,
    }

    impl SupportOracle for DirectOracle<'_> {
        fn support_count(&mut self, itemset: &Itemset) -> Option<usize> {
            Some(self.v.support(itemset))
        }
        fn universe(&self) -> usize {
            self.v.num_records() as usize
        }
    }

    /// Brute force: every partition of every subset, no pruning.
    fn brute_rules(
        body: &Itemset,
        body_count: usize,
        v: &VerticalIndex,
        min_conf: f64,
    ) -> Vec<(Itemset, Itemset)> {
        let mut out = Vec::new();
        for ante in body.proper_subsets() {
            let ante_count = v.support(&ante);
            if ante_count > 0 && body_count as f64 >= min_conf * ante_count as f64 {
                out.push((ante.clone(), body.minus(&ante)));
            }
        }
        out.sort();
        out
    }

    #[test]
    fn paper_rg_is_generated() {
        let d = salary();
        let v = VerticalIndex::build(&d);
        let s = d.schema();
        let body = Itemset::from_items([
            s.encode_named("Age", "20-30").unwrap(),
            s.encode_named("Salary", "90K-120K").unwrap(),
        ]);
        let mut oracle = DirectOracle { v: &v };
        let mut out = Vec::new();
        rules_for_itemset(&body, 5, &mut oracle, 0.8, &mut out);
        let rg = out
            .iter()
            .find(|r| r.antecedent.len() == 1 && r.consequent.len() == 1)
            .filter(|r| {
                r.antecedent
                    .contains(s.encode_named("Age", "20-30").unwrap())
            })
            .expect("RG = (A0 → S2) passes 80% confidence");
        assert_eq!(rg.counts.body, 5);
        assert_eq!(rg.counts.antecedent, 6);
        assert!((rg.confidence() - 5.0 / 6.0).abs() < 1e-12);
        assert!((rg.support() - 5.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_across_bodies() {
        let d = salary();
        let v = VerticalIndex::build(&d);
        let cfis = charm(&full_vertical(&v), 2);
        for min_conf in [0.5f64, 0.8, 0.95] {
            for cfi in &cfis {
                if cfi.itemset.len() < 2 || cfi.itemset.len() > 5 {
                    continue;
                }
                let mut oracle = DirectOracle { v: &v };
                let mut out = Vec::new();
                rules_for_itemset(&cfi.itemset, cfi.support(), &mut oracle, min_conf, &mut out);
                let mut got: Vec<(Itemset, Itemset)> = out
                    .into_iter()
                    .map(|r| (r.antecedent, r.consequent))
                    .collect();
                got.sort();
                let expected = brute_rules(&cfi.itemset, cfi.support(), &v, min_conf);
                assert_eq!(got, expected, "body {} conf {min_conf}", cfi.itemset);
            }
        }
    }

    #[test]
    fn ittree_oracle_agrees_with_direct_oracle() {
        let d = salary();
        let v = VerticalIndex::build(&d);
        let cfis = charm(&full_vertical(&v), 2);
        let tree = ClosedItTree::build(cfis.clone(), d.schema().num_items(), 11);
        for cfi in &cfis {
            if cfi.itemset.len() < 2 {
                continue;
            }
            let run = |oracle: &mut dyn SupportOracle| {
                let mut out = Vec::new();
                rules_for_itemset(&cfi.itemset, cfi.support(), oracle, 0.7, &mut out);
                out.sort_by(|a, b| (&a.antecedent, &a.consequent).cmp(&(&b.antecedent, &b.consequent)));
                out
            };
            let direct = run(&mut DirectOracle { v: &v });
            let via_tree = run(&mut ClosureSupportOracle::new(&tree, None));
            assert_eq!(direct, via_tree, "body {}", cfi.itemset);
        }
    }

    #[test]
    fn localized_rule_rl_from_focal_oracle() {
        // The paper's RL: in the Seattle-female subset, (Age=30-40 →
        // Salary=90K-120K) has 75% support, 100% confidence.
        let d = salary();
        let v = VerticalIndex::build(&d);
        let s = d.schema();
        let cfis = charm(&full_vertical(&v), 2);
        let tree = ClosedItTree::build(cfis, s.num_items(), 11);
        let focal = Tidset::from_sorted(vec![7, 8, 9, 10]);
        let body = Itemset::from_items([
            s.encode_named("Age", "30-40").unwrap(),
            s.encode_named("Salary", "90K-120K").unwrap(),
        ]);
        let local_count = tree.tids_of(&body).unwrap().intersect_count(&focal);
        assert_eq!(local_count, 3);
        let mut oracle = ClosureSupportOracle::new(&tree, Some(&focal));
        let mut out = Vec::new();
        rules_for_itemset(&body, local_count, &mut oracle, 0.9, &mut out);
        let rl = out
            .iter()
            .find(|r| r.antecedent.contains(s.encode_named("Age", "30-40").unwrap()))
            .expect("RL must be found locally");
        assert!((rl.support() - 0.75).abs() < 1e-12);
        assert!((rl.confidence() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn batch_generation_filters_by_min_count() {
        let d = salary();
        let v = VerticalIndex::build(&d);
        let cfis = charm(&full_vertical(&v), 2);
        let bodies: Vec<(&Itemset, usize)> =
            cfis.iter().map(|c| (&c.itemset, c.support())).collect();
        let mut oracle = DirectOracle { v: &v };
        let strict = rules_for_itemsets(bodies.iter().copied(), &mut oracle, 5, 0.8);
        let mut oracle = DirectOracle { v: &v };
        let loose = rules_for_itemsets(bodies.iter().copied(), &mut oracle, 2, 0.8);
        assert!(strict.len() < loose.len());
        for r in &strict {
            assert!(r.counts.body >= 5);
            assert!(r.confidence() >= 0.8 - 1e-9);
        }
    }

    #[test]
    fn no_rules_from_short_bodies() {
        let d = salary();
        let v = VerticalIndex::build(&d);
        let mut oracle = DirectOracle { v: &v };
        let mut out = Vec::new();
        let single = Itemset::singleton(d.schema().encode_named("Gender", "F").unwrap());
        rules_for_itemset(&single, 7, &mut oracle, 0.1, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn confidence_pruning_is_lossless() {
        // With min_conf = 0, every partition must be produced: check the
        // count formula 2^n − 2 for an n-item body.
        let d = salary();
        let v = VerticalIndex::build(&d);
        let s = d.schema();
        let body = Itemset::from_items([
            s.encode_named("Gender", "F").unwrap(),
            s.encode_named("Location", "Seattle").unwrap(),
            s.encode_named("Age", "30-40").unwrap(),
        ]);
        let count = v.support(&body);
        assert!(count > 0);
        let mut oracle = DirectOracle { v: &v };
        let mut out = Vec::new();
        rules_for_itemset(&body, count, &mut oracle, 0.0, &mut out);
        assert_eq!(out.len(), (1 << 3) - 2);
    }
}
