//! CHARM: closed frequent itemset mining (Zaki & Hsiao, SDM 2002 — the
//! paper's reference \[24\]).
//!
//! CHARM explores the itemset–tidset (IT) search tree over a vertical
//! database, pruning with four properties of IT-pairs `(Xi, t(Xi))` and
//! `(Xj, t(Xj))` when forming `Y = Xi ∪ Xj`:
//!
//! 1. `t(Xi) = t(Xj)` — `Xj` can be merged into `Xi` and dropped;
//! 2. `t(Xi) ⊂ t(Xj)` — `Xi` can be replaced by `Y` (`Xj` stays);
//! 3. `t(Xi) ⊃ t(Xj)` — `Xj` is dropped, `Y` becomes a child of `Xi`;
//! 4. otherwise `Y` becomes a child of `Xi` if frequent.
//!
//! Generated closed candidates are checked for subsumption against a hash
//! table keyed by the sum of tids (Zaki's trick): a candidate is subsumed
//! iff an already-found closed set has the identical tidset and is a
//! superset.

use crate::vertical::ItemTids;
use colarm_data::{Itemset, Tidset};
use std::collections::HashMap;

/// A mined closed frequent itemset together with its exact tidset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosedItemset {
    /// The closed itemset.
    pub itemset: Itemset,
    /// Records containing it (`t(I)`); `support = tids.len()`.
    pub tids: Tidset,
}

impl ClosedItemset {
    /// Absolute support count.
    pub fn support(&self) -> usize {
        self.tids.len()
    }
}

/// An IT-pair during the search: the itemset grown so far plus its tidset.
#[derive(Debug, Clone)]
struct ItPair {
    itemset: Itemset,
    tids: Tidset,
}

/// Accumulates closed sets with Zaki's tid-sum subsumption hash.
#[derive(Default)]
struct ClosedAccumulator {
    sets: Vec<ClosedItemset>,
    by_hash: HashMap<u64, Vec<usize>>,
}

impl ClosedAccumulator {
    fn tid_hash(tids: &Tidset) -> u64 {
        tids.iter().map(u64::from).sum()
    }

    /// Insert unless an existing closed set subsumes the candidate
    /// (identical tidset, superset itemset).
    fn insert(&mut self, itemset: Itemset, tids: Tidset) {
        let h = Self::tid_hash(&tids);
        if let Some(bucket) = self.by_hash.get(&h) {
            for &idx in bucket {
                let c = &self.sets[idx];
                if c.tids.len() == tids.len()
                    && itemset.is_subset_of(&c.itemset)
                    && c.tids == tids
                {
                    return; // subsumed
                }
            }
        }
        let idx = self.sets.len();
        self.sets.push(ClosedItemset { itemset, tids });
        self.by_hash.entry(h).or_default().push(idx);
    }
}

/// Mine all closed itemsets with absolute support ≥ `min_count` from a
/// vertical database. `min_count` must be ≥ 1.
///
/// The result is unordered; every itemset is closed w.r.t. the records
/// covered by `columns` (for COLARM's offline phase that is the full
/// dataset; for the ARM plan it is the focal subset).
pub fn charm(columns: &[ItemTids], min_count: usize) -> Vec<ClosedItemset> {
    charm_par(columns, min_count, 1)
}

/// [`charm`] with the first-level branches of the IT-tree fanned out
/// across up to `threads` workers (`0` = the session default from
/// [`colarm_data::par::max_threads`]; `1` = fully sequential).
///
/// The output vector is **bit-identical** to the sequential miner at any
/// thread count: the first-level property loop runs sequentially (it
/// rewrites the sibling list as properties 1 and 3 fire), each surviving
/// branch explores its subtree into a worker-local accumulator, and the
/// locals are merged *in branch order* through the global accumulator's
/// subsumption-checking insert. A candidate dropped locally would also be
/// dropped sequentially (its subsumer precedes it in the same branch),
/// and the merge re-check sees exactly the sets the sequential run had
/// inserted before it — so the global insertion sequence, and with it CFI
/// numbering, R-tree layout and persisted snapshots, never depend on the
/// thread count.
pub fn charm_par(columns: &[ItemTids], min_count: usize, threads: usize) -> Vec<ClosedItemset> {
    assert!(min_count >= 1, "min_count must be at least 1");
    let mut pairs: Vec<ItPair> = columns
        .iter()
        .filter(|c| c.tids.len() >= min_count)
        .map(|c| ItPair {
            itemset: Itemset::singleton(c.item),
            tids: c.tids.clone(),
        })
        .collect();
    // Process in increasing support order (CHARM's recommended order: it
    // maximizes the chance of properties 1/2 firing early).
    pairs.sort_by_key(|p| p.tids.len());
    let threads = colarm_data::par::resolve_threads(threads);
    let mut closed = ClosedAccumulator::default();
    if threads <= 1 || pairs.len() < 2 {
        charm_extend(pairs, min_count, &mut closed);
        return closed.sets;
    }
    let branches = first_level_branches(pairs, min_count);
    let locals = colarm_data::par::parallel_map(&branches, threads, |_, branch| {
        let mut local = ClosedAccumulator::default();
        if !branch.children.is_empty() {
            charm_extend(branch.children.clone(), min_count, &mut local);
        }
        local.insert(branch.x.itemset.clone(), branch.x.tids.clone());
        local.sets
    });
    for sets in locals {
        for c in sets {
            closed.insert(c.itemset, c.tids);
        }
    }
    closed.sets
}

/// One first-level branch: the grown prefix `X` plus its child IT-pairs,
/// ready for independent subtree exploration.
struct Branch {
    x: ItPair,
    children: Vec<ItPair>,
}

/// Run the first-level property loop to completion, collecting every
/// branch instead of recursing — the sequential part of [`charm_par`].
fn first_level_branches(mut pairs: Vec<ItPair>, min_count: usize) -> Vec<Branch> {
    let mut branches = Vec::new();
    let mut i = 0usize;
    while i < pairs.len() {
        let (x, children) = explore_siblings(&mut pairs, i, min_count);
        branches.push(Branch { x, children });
        i += 1;
    }
    branches
}

fn charm_extend(mut pairs: Vec<ItPair>, min_count: usize, closed: &mut ClosedAccumulator) {
    let mut i = 0usize;
    while i < pairs.len() {
        let (x, children) = explore_siblings(&mut pairs, i, min_count);
        if !children.is_empty() {
            charm_extend(children, min_count, closed);
        }
        closed.insert(x.itemset, x.tids);
        i += 1;
    }
}

/// Grow `pairs[i]` against its right siblings with Zaki's four IT-pair
/// properties, mutating the sibling list in place (properties 1 and 3
/// remove siblings). Returns the fully grown `X` and its child pairs,
/// sorted by support for recursion.
///
/// The inner loop is allocation-free except where a child is actually
/// kept: the intersection lands in a reused scratch tidset, property 3
/// recycles the removed sibling's tidset (`t(X) ∩ t(Xj) = t(Xj)` there),
/// and only property 4 surrenders the scratch buffer.
fn explore_siblings(
    pairs: &mut Vec<ItPair>,
    i: usize,
    min_count: usize,
) -> (ItPair, Vec<ItPair>) {
    // Take Xi out; it may grow via properties 1 and 2.
    let mut x = pairs[i].clone();
    // Children store only the items beyond `x` plus the combined tidset,
    // so later growth of `x` (properties 1/2) automatically applies to
    // them when materialized below.
    let mut children: Vec<(Itemset, Tidset)> = Vec::new();
    let mut scratch = Tidset::new();
    let mut j = i + 1;
    while j < pairs.len() {
        x.tids.intersect_into(&pairs[j].tids, &mut scratch);
        if scratch.len() < min_count {
            j += 1;
            continue;
        }
        let xi_len = x.tids.len();
        let xj_len = pairs[j].tids.len();
        if scratch.len() == xi_len && scratch.len() == xj_len {
            // Property 1: identical tidsets — absorb Xj into X.
            x.itemset = x.itemset.union(&pairs[j].itemset);
            pairs.remove(j);
        } else if scratch.len() == xi_len {
            // Property 2: t(X) ⊂ t(Xj) — X's closure includes Xj.
            x.itemset = x.itemset.union(&pairs[j].itemset);
            j += 1;
        } else if scratch.len() == xj_len {
            // Property 3: t(Xj) ⊂ t(X) — drop Xj, Y is a child of X; the
            // intersection equals t(Xj), so reuse it as-is.
            let xj = pairs.remove(j);
            children.push((xj.itemset, xj.tids));
        } else {
            // Property 4: incomparable — Y is a child of X.
            children.push((pairs[j].itemset.clone(), std::mem::take(&mut scratch)));
            j += 1;
        }
    }
    let mut child_pairs: Vec<ItPair> = children
        .into_iter()
        .map(|(extra, tids)| ItPair {
            itemset: x.itemset.union(&extra),
            tids,
        })
        .collect();
    child_pairs.sort_by_key(|p| p.tids.len());
    (x, child_pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::brute_force_closed;
    use crate::vertical::full_vertical;
    use colarm_data::synth::{generate, salary, SynthConfig};
    use colarm_data::VerticalIndex;

    fn mine_salary(min_count: usize) -> Vec<ClosedItemset> {
        let d = salary();
        let v = VerticalIndex::build(&d);
        charm(&full_vertical(&v), min_count)
    }

    fn sorted_sets(mut v: Vec<ClosedItemset>) -> Vec<(Itemset, usize)> {
        let mut out: Vec<(Itemset, usize)> = v
            .drain(..)
            .map(|c| (c.itemset.clone(), c.support()))
            .collect();
        out.sort();
        out
    }

    #[test]
    fn salary_closed_sets_match_brute_force() {
        let d = salary();
        let v = VerticalIndex::build(&d);
        for min_count in [1usize, 2, 3, 5] {
            let got = sorted_sets(mine_salary(min_count));
            let expected = sorted_sets(brute_force_closed(&v, min_count));
            assert_eq!(got, expected, "min_count {min_count}");
        }
    }

    #[test]
    fn all_outputs_are_closed_and_frequent() {
        let d = salary();
        let v = VerticalIndex::build(&d);
        let min_count = 2;
        for c in mine_salary(min_count) {
            assert!(c.support() >= min_count);
            assert_eq!(v.itemset_tids(&c.itemset), c.tids, "tidset must be exact");
            // Closure check: no item outside extends it with equal support.
            for i in 0..d.schema().num_items() as u32 {
                let item = colarm_data::ItemId(i);
                if !c.itemset.contains(item) {
                    assert!(
                        !c.tids.is_subset_of(v.tids(item)),
                        "{} not closed: extendable by item {item}",
                        c.itemset
                    );
                }
            }
        }
    }

    #[test]
    fn no_duplicates_in_output() {
        let sets = mine_salary(1);
        let mut seen = std::collections::HashSet::new();
        for c in &sets {
            assert!(seen.insert(c.itemset.clone()), "duplicate {}", c.itemset);
        }
        assert!(sets.len() > 20, "salary at min_count 1 has many closed sets");
    }

    #[test]
    fn threshold_monotonicity() {
        let a = mine_salary(2).len();
        let b = mine_salary(4).len();
        assert!(b <= a);
    }

    #[test]
    #[should_panic(expected = "min_count")]
    fn zero_threshold_rejected() {
        mine_salary(0);
    }

    #[test]
    fn parallel_fanout_is_bit_identical() {
        // Not just the same rule *set*: the same vector, in the same
        // order — CFI numbering depends on it.
        let d = salary();
        let v = VerticalIndex::build(&d);
        let cols = full_vertical(&v);
        for min_count in [1usize, 2, 3] {
            let seq = charm(&cols, min_count);
            for threads in [2usize, 3, 8] {
                let par = charm_par(&cols, min_count, threads);
                assert_eq!(seq, par, "min_count {min_count} threads {threads}");
            }
        }
    }

    #[test]
    fn parallel_fanout_matches_on_random_data() {
        for seed in 0..4u64 {
            let cfg = SynthConfig {
                name: "t".into(),
                seed,
                records: 80,
                domains: vec![3, 2, 4, 2, 3],
                top_mass: 0.5,
                skew: 1.0,
                clusters: 2,
                cluster_focus: 0.6,
                focus_strength: 0.9,
                templates: 2,
                template_len: 2,
                template_prob: 0.3,
            };
            let d = generate(&cfg);
            let v = VerticalIndex::build(&d);
            let cols = full_vertical(&v);
            for min_count in [2usize, 8] {
                let seq = charm(&cols, min_count);
                let par = charm_par(&cols, min_count, 4);
                assert_eq!(seq, par, "seed {seed} min_count {min_count}");
            }
        }
    }

    #[test]
    fn random_datasets_match_brute_force() {
        for seed in 0..6u64 {
            let cfg = SynthConfig {
                name: "t".into(),
                seed,
                records: 60,
                domains: vec![2, 3, 2, 4],
                top_mass: 0.5,
                skew: 1.0,
                clusters: 2,
                cluster_focus: 0.6,
                focus_strength: 0.9,
                templates: 2,
                template_len: 2,
                template_prob: 0.3,
            };
            let d = generate(&cfg);
            let v = VerticalIndex::build(&d);
            for min_count in [2usize, 6, 15] {
                let got = sorted_sets(charm(&full_vertical(&v), min_count));
                let expected = sorted_sets(brute_force_closed(&v, min_count));
                assert_eq!(got, expected, "seed {seed} min_count {min_count}");
            }
        }
    }
}
