//! Apriori: classic horizontal level-wise frequent-itemset mining
//! (Agrawal & Srikant, VLDB 1994 — the paper's reference \[4\]).
//!
//! Kept as a second, independently-implemented baseline: it shares no code
//! with the vertical miners, which makes cross-checks between the three
//! miners meaningful, and it gives the benchmark suite a horizontal
//! counting baseline.

use colarm_data::{Dataset, Itemset, Tidset};
use std::collections::HashMap;

/// A frequent itemset with its absolute support count (Apriori counts
/// horizontally, so no tidset is produced).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequentItemset {
    /// The itemset.
    pub itemset: Itemset,
    /// Absolute support count.
    pub count: usize,
}

/// Mine all frequent itemsets of `dataset`, optionally restricted to the
/// records in `subset`.
pub fn apriori(dataset: &Dataset, subset: Option<&Tidset>, min_count: usize) -> Vec<FrequentItemset> {
    apriori_filtered(dataset, subset, min_count, |_| true)
}

/// [`apriori`] restricted to items accepted by `keep` (COLARM's ARM plan
/// passes the query's `Aitem` predicate).
pub fn apriori_filtered(
    dataset: &Dataset,
    subset: Option<&Tidset>,
    min_count: usize,
    keep: impl Fn(colarm_data::ItemId) -> bool,
) -> Vec<FrequentItemset> {
    assert!(min_count >= 1, "min_count must be at least 1");
    let tids: Vec<u32> = match subset {
        Some(s) => s.iter().collect(),
        None => (0..dataset.num_records() as u32).collect(),
    };
    // L1: count single items.
    let mut counts: HashMap<Itemset, usize> = HashMap::new();
    for &t in &tids {
        let record = dataset.record_as_itemset(t);
        for &item in record.items() {
            if keep(item) {
                *counts.entry(Itemset::singleton(item)).or_insert(0) += 1;
            }
        }
    }
    let mut current: Vec<FrequentItemset> = counts
        .into_iter()
        .filter(|(_, c)| *c >= min_count)
        .map(|(itemset, count)| FrequentItemset { itemset, count })
        .collect();
    current.sort_by(|a, b| a.itemset.cmp(&b.itemset));
    let mut all = current.clone();
    while !current.is_empty() {
        let candidates = generate_candidates(&current);
        if candidates.is_empty() {
            break;
        }
        // Hash-tree (trie) counting, as in the original Apriori paper:
        // candidates live in a prefix trie; each record is counted by one
        // recursive descent, touching only the candidate prefixes the
        // record actually extends.
        let trie = CandidateTrie::build(&candidates);
        let mut counts = vec![0usize; candidates.len()];
        for &t in &tids {
            let record = dataset.record_as_itemset(t);
            trie.count(record.items(), &mut counts);
        }
        current = candidates
            .into_iter()
            .zip(counts)
            .filter(|(_, c)| *c >= min_count)
            .map(|(itemset, count)| FrequentItemset { itemset, count })
            .collect();
        current.sort_by(|a, b| a.itemset.cmp(&b.itemset));
        all.extend(current.iter().cloned());
    }
    all
}

/// Prefix trie over same-length sorted candidates (the Apriori
/// "hash-tree"). Children are sorted by item id; leaves carry the
/// candidate's index into the count vector.
struct CandidateTrie {
    nodes: Vec<TrieNode>,
}

#[derive(Default)]
struct TrieNode {
    /// `(item, child node)` pairs, ascending by item.
    children: Vec<(colarm_data::ItemId, u32)>,
    /// Candidate index when a candidate ends here.
    leaf: Option<u32>,
}

impl CandidateTrie {
    fn build(candidates: &[Itemset]) -> CandidateTrie {
        let mut trie = CandidateTrie {
            nodes: vec![TrieNode::default()],
        };
        // Candidates are sorted, so children are appended in order.
        for (idx, cand) in candidates.iter().enumerate() {
            let mut node = 0usize;
            for &item in cand.items() {
                node = match trie.nodes[node].children.last() {
                    Some(&(last_item, child)) if last_item == item => child as usize,
                    _ => {
                        let child = trie.nodes.len() as u32;
                        trie.nodes.push(TrieNode::default());
                        trie.nodes[node].children.push((item, child));
                        child as usize
                    }
                };
            }
            debug_assert!(trie.nodes[node].leaf.is_none(), "duplicate candidate");
            trie.nodes[node].leaf = Some(idx as u32);
        }
        trie
    }

    /// Count all candidates contained in the (sorted) record.
    fn count(&self, record: &[colarm_data::ItemId], counts: &mut [usize]) {
        self.descend(0, record, counts);
    }

    fn descend(&self, node: usize, record: &[colarm_data::ItemId], counts: &mut [usize]) {
        let n = &self.nodes[node];
        if let Some(idx) = n.leaf {
            counts[idx as usize] += 1;
        }
        if n.children.is_empty() || record.is_empty() {
            return;
        }
        // Merge-walk the sorted children against the sorted record.
        let (mut i, mut j) = (0usize, 0usize);
        while i < n.children.len() && j < record.len() {
            let (item, child) = n.children[i];
            match item.cmp(&record[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    self.descend(child as usize, &record[j + 1..], counts);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

/// Apriori-gen: join frequent k-itemsets sharing a (k−1)-prefix, then prune
/// candidates with an infrequent k-subset. The input is sorted, so
/// equal-prefix itemsets form contiguous runs and the join is linear in
/// the output instead of quadratic in `|L_k|`.
fn generate_candidates(frequent: &[FrequentItemset]) -> Vec<Itemset> {
    let known: std::collections::HashSet<&[colarm_data::ItemId]> =
        frequent.iter().map(|f| f.itemset.items()).collect();
    let mut out = Vec::new();
    let mut run_start = 0usize;
    let mut scratch: Vec<colarm_data::ItemId> = Vec::new();
    while run_start < frequent.len() {
        let prefix = {
            let items = frequent[run_start].itemset.items();
            &items[..items.len() - 1]
        };
        let mut run_end = run_start + 1;
        while run_end < frequent.len() {
            let items = frequent[run_end].itemset.items();
            if &items[..items.len() - 1] != prefix {
                break;
            }
            run_end += 1;
        }
        // Join every pair within the equal-prefix run.
        for i in run_start..run_end {
            for j in (i + 1)..run_end {
                let b = frequent[j].itemset.items();
                let candidate = frequent[i].itemset.with_item(b[b.len() - 1]);
                // Prune: all k-subsets must be frequent (the two joined
                // parents are, by construction; check the rest).
                let prune_ok = candidate.items().iter().all(|&drop| {
                    if drop == candidate.items()[candidate.len() - 1]
                        || drop == candidate.items()[candidate.len() - 2]
                    {
                        return true; // a parent
                    }
                    scratch.clear();
                    scratch.extend(candidate.items().iter().copied().filter(|&x| x != drop));
                    known.contains(scratch.as_slice())
                });
                if prune_ok {
                    out.push(candidate);
                }
            }
        }
        run_start = run_end;
    }
    out.sort();
    out.dedup();
    out
}

/// Restrict Apriori output to the itemsets that are **closed** in the
/// mined context: `F` is closed iff no single-item extension `F ∪ {i}` has
/// the same count. Any such extension is itself frequent (same count ≥
/// threshold), so checking against the frequent map is exhaustive.
pub fn closed_only(frequent: &[FrequentItemset]) -> Vec<FrequentItemset> {
    use std::collections::HashSet;
    let mut not_closed: HashSet<&Itemset> = HashSet::new();
    let by_set: HashMap<&Itemset, usize> =
        frequent.iter().map(|f| (&f.itemset, f.count)).collect();
    for f in frequent {
        if f.itemset.len() < 2 {
            continue;
        }
        for &drop in f.itemset.items() {
            let sub = Itemset::from_sorted(
                f.itemset
                    .items()
                    .iter()
                    .copied()
                    .filter(|&x| x != drop)
                    .collect(),
            );
            if by_set.get(&sub) == Some(&f.count) {
                if let Some((key, _)) = by_set.get_key_value(&sub) {
                    not_closed.insert(key);
                }
            }
        }
    }
    frequent
        .iter()
        .filter(|f| !not_closed.contains(&f.itemset))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::brute_force_frequent;
    use colarm_data::synth::salary;
    use colarm_data::VerticalIndex;

    fn sorted_counts(mut v: Vec<FrequentItemset>) -> Vec<(Itemset, usize)> {
        let mut out: Vec<(Itemset, usize)> = v.drain(..).map(|f| (f.itemset, f.count)).collect();
        out.sort();
        out
    }

    #[test]
    fn matches_vertical_reference_on_salary() {
        let d = salary();
        let v = VerticalIndex::build(&d);
        for min_count in [2usize, 4] {
            let got = sorted_counts(apriori(&d, None, min_count));
            let mut expected: Vec<(Itemset, usize)> = brute_force_frequent(&v, min_count)
                .into_iter()
                .map(|c| (c.itemset, c.tids.len()))
                .collect();
            expected.sort();
            assert_eq!(got, expected, "min_count {min_count}");
        }
    }

    #[test]
    fn subset_mining_counts_locally() {
        let d = salary();
        let seattle_women = Tidset::from_sorted(vec![7, 8, 9, 10]);
        let out = apriori(&d, Some(&seattle_women), 3);
        // (Age=30-40, Salary=90K-120K) holds in 3 of the 4 records.
        let s = d.schema();
        let target = Itemset::from_items([
            s.encode_named("Age", "30-40").unwrap(),
            s.encode_named("Salary", "90K-120K").unwrap(),
        ]);
        let found = out.iter().find(|f| f.itemset == target).expect("local CFI present");
        assert_eq!(found.count, 3);
        // Nothing can exceed the subset size.
        assert!(out.iter().all(|f| f.count <= 4));
    }

    #[test]
    fn closed_only_matches_brute_force_closed() {
        let d = salary();
        let v = colarm_data::VerticalIndex::build(&d);
        let frequent = apriori(&d, None, 2);
        let mut got: Vec<(Itemset, usize)> = closed_only(&frequent)
            .into_iter()
            .map(|f| (f.itemset, f.count))
            .collect();
        got.sort();
        let mut expected: Vec<(Itemset, usize)> = crate::reference::brute_force_closed(&v, 2)
            .into_iter()
            .map(|c| (c.itemset, c.tids.len()))
            .collect();
        expected.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn filtered_apriori_respects_item_predicate() {
        let d = salary();
        let s = d.schema();
        let age = s.attribute_by_name("Age").unwrap();
        let out = apriori_filtered(&d, None, 2, |i| s.item_attribute(i) == age);
        assert!(!out.is_empty());
        for f in &out {
            for &item in f.itemset.items() {
                assert_eq!(s.item_attribute(item), age);
            }
        }
    }

    #[test]
    fn empty_subset_mines_nothing() {
        let d = salary();
        let out = apriori(&d, Some(&Tidset::new()), 1);
        assert!(out.is_empty());
    }
}
