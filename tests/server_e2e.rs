//! End-to-end exercise of `colarm serve` over real sockets: spin the
//! server on an ephemeral port, speak hand-written HTTP/1.1 at it, and
//! hold the transport to the in-process contract — bit-identical rules
//! for every plan, and drill-down reuse visible across wire requests.

use colarm::data::synth::{generate, SynthConfig};
use colarm::data::{AttributeId, RangeSpec};
use colarm::{
    Colarm, ColarmServer, LocalizedQuery, MipIndexConfig, PlanKind, QueryRequest, Semantics,
    ServerConfig, ServerHandle, SystemClock, TransportConfig,
};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

fn shared_system() -> Arc<Colarm> {
    let dataset = generate(&SynthConfig {
        name: "server-e2e".into(),
        seed: 11,
        records: 80,
        domains: vec![3, 4, 2, 5],
        top_mass: 0.55,
        skew: 1.0,
        clusters: 2,
        cluster_focus: 0.6,
        focus_strength: 0.9,
        templates: 3,
        template_len: 3,
        template_prob: 0.3,
    });
    Colarm::build(
        dataset,
        MipIndexConfig {
            primary_support: 0.1,
            ..Default::default()
        },
    )
    .expect("index builds")
    .into_shared()
}

/// Bind an ephemeral port and start the worker-pool transport. The
/// returned handle owns the acceptor and worker threads; dropping it
/// (or calling `shutdown()`) drains and joins them, so tests leak no
/// detached accept loop.
fn spawn_server(server: &Arc<ColarmServer>) -> ServerHandle {
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port binds");
    server.serve_listener(listener).expect("transport starts")
}

/// One full HTTP/1.1 exchange on a fresh connection.
fn http(handle: &ServerHandle, method: &str, path: &str, body: &str) -> (u16, serde_json::Value) {
    let port = handle.addr().port();
    let mut stream = TcpStream::connect(("127.0.0.1", port)).expect("connects");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("request writes");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("response reads");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let json_body = raw.split("\r\n\r\n").nth(1).expect("body present");
    (status, serde_json::from_str(json_body).expect("JSON body"))
}

fn query(range: &RangeSpec, semantics: Semantics) -> LocalizedQuery {
    LocalizedQuery::builder()
        .range(range.clone())
        .minsupp(0.3)
        .minconf(0.5)
        .semantics(semantics)
        .build()
        .expect("valid query")
}

fn request_body(request: &QueryRequest) -> String {
    serde_json::to_string(request).expect("request serializes")
}

#[test]
fn http_answers_are_bit_identical_to_in_process_for_all_six_plans() {
    let colarm = shared_system();
    let server = ColarmServer::new(colarm.clone(), ServerConfig::default());
    let handle = spawn_server(&server);
    let q = query(
        &RangeSpec::all().with(AttributeId(0), vec![0u16, 1]),
        Semantics::Strict,
    );

    assert_eq!(http(&handle, "GET", "/health", "").0, 200);

    for plan in PlanKind::ALL {
        let request = QueryRequest::query(&q).with_plan(plan);
        let direct = colarm.run(&request).expect("in-process run");
        let (status, wire) = http(&handle, "POST", "/query", &request_body(&request));
        assert_eq!(status, 200, "{plan}: {wire}");
        assert_eq!(wire["plan"], serde_json::to_value(plan).unwrap(), "{plan}");
        assert_eq!(
            wire["subset_size"].as_u64(),
            Some(direct.subset_size as u64)
        );
        // Rules are integer-exact JSON: equality here is bit-identity.
        assert_eq!(
            wire["rules"],
            serde_json::to_value(&direct.rules).unwrap(),
            "{plan} diverged over the wire"
        );
    }

    // The optimizer path (no forced plan) matches too.
    let request = QueryRequest::query(&q);
    let direct = colarm.run(&request).expect("in-process run");
    let (status, wire) = http(&handle, "POST", "/query", &request_body(&request));
    assert_eq!(status, 200);
    assert_eq!(wire["plan"], serde_json::to_value(direct.plan).unwrap());
    assert_eq!(wire["rules"], serde_json::to_value(&direct.rules).unwrap());
}

#[test]
fn session_drilldowns_reuse_subsets_and_columns_over_the_wire() {
    let colarm = shared_system();
    let server = ColarmServer::new(colarm.clone(), ServerConfig::default());
    let handle = spawn_server(&server);
    // Unrestricted forces ARM, whose SELECT exercises the column cache.
    let base = query(
        &RangeSpec::all().with(AttributeId(0), vec![0u16, 1]),
        Semantics::Unrestricted,
    );
    let refined = query(
        &RangeSpec::all()
            .with(AttributeId(0), vec![0u16, 1])
            .with(AttributeId(1), vec![0u16, 1]),
        Semantics::Unrestricted,
    );

    let (status, created) = http(&handle, "POST", "/sessions", r#"{"id": "tenant-1"}"#);
    assert_eq!(status, 201);
    assert_eq!(created["id"].as_str(), Some("tenant-1"));

    let (status, first) = http(
        &handle,
        "POST",
        "/sessions/tenant-1/query",
        &request_body(&QueryRequest::query(&base)),
    );
    assert_eq!(status, 200, "{first}");
    assert_eq!(first["session"]["subset_misses"].as_u64(), Some(1));
    assert_eq!(first["session"]["subsets_derived"].as_u64(), Some(0));

    // The second query on the same session derives from the first's
    // caches — the PR 5 reuse path, observed end-to-end over HTTP.
    let (status, second) = http(
        &handle,
        "POST",
        "/sessions/tenant-1/query",
        &request_body(&QueryRequest::query(&refined)),
    );
    assert_eq!(status, 200, "{second}");
    assert_eq!(second["session"]["subsets_derived"].as_u64(), Some(1));
    assert_eq!(second["session"]["columns_derived"].as_u64(), Some(1));

    // Derivation changed nothing: a cold in-process run agrees exactly.
    let cold = colarm
        .run(&QueryRequest::query(&refined))
        .expect("cold run");
    assert_eq!(second["rules"], serde_json::to_value(&cold.rules).unwrap());

    // Session stats and eviction round-trip over the transport too.
    let (status, stats) = http(&handle, "GET", "/sessions/tenant-1", "");
    assert_eq!(status, 200);
    assert!(stats["subsets_derived"].as_u64() >= Some(1));
    let (status, evicted) = http(&handle, "DELETE", "/sessions/tenant-1", "");
    assert_eq!(status, 200);
    assert_eq!(evicted["evicted"].as_bool(), Some(true));
    let (status, error) = http(&handle, "GET", "/sessions/tenant-1", "");
    assert_eq!(status, 404);
    assert_eq!(error["error"]["code"].as_str(), Some("session_not_found"));
}

#[test]
fn named_index_routes_answer_bit_identically_to_the_default_alias() {
    let colarm = shared_system();
    let server = ColarmServer::with_named_indexes(
        vec![
            ("retail".to_string(), colarm.clone()),
            ("weblog".to_string(), colarm.clone()),
        ],
        ServerConfig::default(),
        Arc::new(SystemClock::default()),
    )
    .expect("named indexes build");
    let handle = spawn_server(&server);
    let base = query(
        &RangeSpec::all().with(AttributeId(0), vec![0u16, 1]),
        Semantics::Unrestricted,
    );
    let refined = query(
        &RangeSpec::all()
            .with(AttributeId(0), vec![0u16, 1])
            .with(AttributeId(1), vec![0u16, 1]),
        Semantics::Unrestricted,
    );

    // The same Table-1-style drill-down runs three ways: bare routes
    // (alias for `retail`, the first-listed index), the explicit
    // `/indexes/retail/...` prefix, and `/indexes/weblog/...`. All
    // three must produce bit-identical rules for the same snapshot.
    let mut answers = Vec::new();
    for prefix in ["", "/indexes/retail", "/indexes/weblog"] {
        let sid = format!("drill{}", answers.len());
        let (status, _) = http(
            &handle,
            "POST",
            &format!("{prefix}/sessions"),
            &format!(r#"{{"id": "{sid}"}}"#),
        );
        assert_eq!(status, 201, "{prefix}");
        let (status, first) = http(
            &handle,
            "POST",
            &format!("{prefix}/sessions/{sid}/query"),
            &request_body(&QueryRequest::query(&base)),
        );
        assert_eq!(status, 200, "{prefix}: {first}");
        let (status, second) = http(
            &handle,
            "POST",
            &format!("{prefix}/sessions/{sid}/query"),
            &request_body(&QueryRequest::query(&refined)),
        );
        assert_eq!(status, 200, "{prefix}: {second}");
        assert_eq!(
            second["session"]["subsets_derived"].as_u64(),
            Some(1),
            "{prefix} lost the drill-down reuse path"
        );
        answers.push((first["rules"].clone(), second["rules"].clone()));
    }
    let cold = colarm
        .run(&QueryRequest::query(&refined))
        .expect("cold run");
    let expected = serde_json::to_value(&cold.rules).unwrap();
    for (i, (first, second)) in answers.iter().enumerate() {
        assert_eq!(second, &expected, "route #{i} diverged from in-process");
        assert_eq!(first, &answers[0].0, "route #{i} first answer diverged");
    }

    // Sessions are namespaced per index: the default-alias session is
    // the retail one, and weblog cannot see it.
    let (status, _) = http(&handle, "GET", "/indexes/retail/sessions/drill0", "");
    assert_eq!(status, 200);
    let (status, error) = http(&handle, "GET", "/indexes/weblog/sessions/drill0", "");
    assert_eq!(status, 404);
    assert_eq!(error["error"]["code"].as_str(), Some("session_not_found"));
    handle.shutdown();
}

#[test]
fn many_more_connections_than_workers_all_complete_the_drilldown() {
    let colarm = shared_system();
    let server = ColarmServer::new(colarm.clone(), ServerConfig::default());
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port binds");
    let handle = Arc::new(
        server
            .serve_listener_with(
                listener,
                TransportConfig {
                    workers: 2,
                    ..TransportConfig::default()
                },
            )
            .expect("transport starts"),
    );
    let base = query(
        &RangeSpec::all().with(AttributeId(0), vec![0u16, 1]),
        Semantics::Unrestricted,
    );
    let refined = query(
        &RangeSpec::all()
            .with(AttributeId(0), vec![0u16, 1])
            .with(AttributeId(1), vec![0u16, 1]),
        Semantics::Unrestricted,
    );
    let expected = serde_json::to_value(
        &colarm
            .run(&QueryRequest::query(&refined))
            .expect("cold run")
            .rules,
    )
    .unwrap();

    // 24 concurrent clients against 2 workers: every one creates a
    // session, drills down, and must see rules bit-identical to the
    // in-process run. Readiness multiplexing — not thread count — is
    // what lets them all make progress.
    let clients: Vec<_> = (0..24)
        .map(|i| {
            let handle = Arc::clone(&handle);
            let base = request_body(&QueryRequest::query(&base));
            let refined = request_body(&QueryRequest::query(&refined));
            let expected = expected.clone();
            std::thread::spawn(move || {
                let sid = format!("load{i}");
                let (status, _) = http(
                    &handle,
                    "POST",
                    "/sessions",
                    &format!(r#"{{"id": "{sid}"}}"#),
                );
                assert_eq!(status, 201, "client {i}");
                let (status, _) =
                    http(&handle, "POST", &format!("/sessions/{sid}/query"), &base);
                assert_eq!(status, 200, "client {i}");
                let (status, second) =
                    http(&handle, "POST", &format!("/sessions/{sid}/query"), &refined);
                assert_eq!(status, 200, "client {i}");
                assert_eq!(second["rules"], expected, "client {i} diverged");
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }
    Arc::try_unwrap(handle)
        .unwrap_or_else(|_| panic!("clients hold the handle"))
        .shutdown();
}

#[test]
fn keep_alive_connections_serve_sequential_requests() {
    let server = ColarmServer::new(shared_system(), ServerConfig::default());
    let handle = spawn_server(&server);
    let mut stream = TcpStream::connect(handle.addr()).expect("connects");
    for _ in 0..3 {
        write!(
            stream,
            "GET /health HTTP/1.1\r\nHost: localhost\r\n\r\n"
        )
        .expect("request writes");
        let mut header = Vec::new();
        let mut byte = [0u8; 1];
        while !header.ends_with(b"\r\n\r\n") {
            stream.read_exact(&mut byte).expect("header byte");
            header.push(byte[0]);
        }
        let head = String::from_utf8(header).unwrap();
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("length header")
            .parse()
            .unwrap();
        let mut body = vec![0u8; length];
        stream.read_exact(&mut body).expect("body reads");
        let body = String::from_utf8(body).unwrap();
        let value: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(value["status"].as_str(), Some("ok"));
    }
}
