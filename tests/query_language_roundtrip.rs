//! Cross-crate checks of the query language: parsed queries must behave
//! exactly like builder-constructed ones, and the full paper grammar is
//! accepted.

use colarm::{Colarm, LocalizedQuery, MipIndexConfig, QueryRequest};

fn system() -> Colarm {
    Colarm::build(
        colarm::data::synth::salary(),
        MipIndexConfig {
            primary_support: 2.0 / 11.0,
            ..Default::default()
        },
    )
    .expect("salary index builds")
}

#[test]
fn parsed_and_built_queries_are_interchangeable() {
    let colarm = system();
    let schema = colarm.index().dataset().schema().clone();
    let cases = [
        (
            "REPORT LOCALIZED ASSOCIATION RULES FROM Dataset salary \
             WHERE RANGE Location = (Seattle), Gender = (F) \
             HAVING minsupport = 75% AND minconfidence = 90%;",
            LocalizedQuery::builder()
                .range_named(&schema, "Location", &["Seattle"])
                .unwrap()
                .range_named(&schema, "Gender", &["F"])
                .unwrap()
                .minsupp(0.75)
                .minconf(0.9)
                .build().unwrap(),
        ),
        (
            "report localized association rules where range \
             Company = (IBM, Google) and item attributes Age, Salary \
             having minsupport = 0.4 and minconfidence = 0.7",
            LocalizedQuery::builder()
                .range_named(&schema, "Company", &["IBM", "Google"])
                .unwrap()
                .item_attrs_named(&schema, &["Age", "Salary"])
                .unwrap()
                .minsupp(0.4)
                .minconf(0.7)
                .build().unwrap(),
        ),
    ];
    for (text, built) in cases {
        let parsed = colarm::parse_query(text, &schema).expect("parses");
        assert_eq!(parsed, built, "query objects must match for: {text}");
        let via_text = colarm.run_text(text).expect("executes");
        let via_built = colarm.run(&QueryRequest::query(&built)).expect("executes");
        assert_eq!(via_text.rules, via_built.rules);
    }
}

#[test]
fn grammar_corner_cases() {
    let colarm = system();
    let schema = colarm.index().dataset().schema().clone();
    // No FROM clause, no trailing semicolon, mixed case keywords.
    let q = colarm::parse_query(
        "Report Localized Association Rules Where Range Gender = (M) \
         Having MinSupport = 0.5 And MinConfidence = 0.6",
        &schema,
    )
    .expect("parses without FROM/semicolon");
    assert_eq!(q.minsupp, 0.5);
    // Values with dashes and digits.
    let q = colarm::parse_query(
        "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Age = (20-30, 40-50) \
         HAVING minsupport = 10% AND minconfidence = 55%",
        &schema,
    )
    .expect("interval labels parse");
    assert_eq!(q.range.selections().values().next().unwrap().len(), 2);
}

#[test]
fn rejected_inputs_do_not_execute() {
    let colarm = system();
    for bad in [
        "",
        "SELECT * FROM salary",
        "REPORT LOCALIZED ASSOCIATION RULES HAVING minsupport = 0.5 AND minconfidence = 0.5",
        "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Gender = () \
         HAVING minsupport = 0.5 AND minconfidence = 0.5",
        "REPORT LOCALIZED ASSOCIATION RULES WHERE RANGE Gender = (F) \
         HAVING minsupport = 150% AND minconfidence = 0.5",
    ] {
        assert!(colarm.run_text(bad).is_err(), "accepted bad query: {bad}");
    }
}
