//! Server lifecycle over real sockets: graceful drain joins every
//! transport thread, reload swaps snapshot generations without
//! dropping in-flight work, and sessions stay pinned to the snapshot
//! they were created on.

use colarm::data::synth::{generate, SynthConfig};
use colarm::data::{AttributeId, RangeSpec};
use colarm::{
    Colarm, ColarmServer, LocalizedQuery, MipIndexConfig, QueryRequest, Semantics, ServerConfig,
    ServerHandle, TransportConfig, DEFAULT_INDEX,
};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn system(seed: u64) -> Arc<Colarm> {
    let dataset = generate(&SynthConfig {
        name: format!("lifecycle-{seed}"),
        seed,
        records: 70,
        domains: vec![3, 4, 2, 5],
        top_mass: 0.55,
        skew: 1.0,
        clusters: 2,
        cluster_focus: 0.6,
        focus_strength: 0.9,
        templates: 3,
        template_len: 3,
        template_prob: 0.3,
    });
    Colarm::build(
        dataset,
        MipIndexConfig {
            primary_support: 0.1,
            ..Default::default()
        },
    )
    .expect("index builds")
    .into_shared()
}

fn serve(server: &Arc<ColarmServer>, workers: usize) -> ServerHandle {
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port binds");
    server
        .serve_listener_with(
            listener,
            TransportConfig {
                workers,
                ..TransportConfig::default()
            },
        )
        .expect("transport starts")
}

/// One full HTTP/1.1 exchange on a fresh connection.
fn http(handle: &ServerHandle, method: &str, path: &str, body: &str) -> (u16, serde_json::Value) {
    let mut stream = TcpStream::connect(handle.addr()).expect("connects");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("request writes");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("response reads");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let json_body = raw.split("\r\n\r\n").nth(1).expect("body present");
    (status, serde_json::from_str(json_body).expect("JSON body"))
}

fn query_body(semantics: Semantics) -> String {
    let query = LocalizedQuery::builder()
        .range(RangeSpec::all().with(AttributeId(0), vec![0u16, 1]))
        .minsupp(0.3)
        .minconf(0.5)
        .semantics(semantics)
        .build()
        .expect("valid query");
    serde_json::to_string(&QueryRequest::query(&query)).expect("serializes")
}

/// Live OS threads of this process (Linux `/proc`; the transport must
/// not leak any across shutdown).
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

#[test]
fn shutdown_joins_every_transport_thread() {
    let before = thread_count();
    let server = ColarmServer::new(system(1), ServerConfig::default());
    let handle = serve(&server, 4);
    // Acceptor + 4 workers are live (only asserted where /proc exists).
    if before > 0 {
        assert!(thread_count() >= before + 5, "transport threads missing");
    }
    assert_eq!(http(&handle, "GET", "/health", "").0, 200);
    handle.shutdown();
    if before > 0 {
        // Joins are synchronous: the count is back immediately.
        assert_eq!(thread_count(), before, "transport leaked threads");
    }
}

#[test]
fn dropping_the_handle_also_drains() {
    let server = ColarmServer::new(system(2), ServerConfig::default());
    let before = thread_count();
    {
        let handle = serve(&server, 2);
        assert_eq!(http(&handle, "GET", "/health", "").0, 200);
    }
    if before > 0 {
        assert_eq!(thread_count(), before, "drop did not join the transport");
    }
}

#[test]
fn an_in_flight_request_finishes_during_drain() {
    let server = ColarmServer::new(system(3), ServerConfig::default());
    let handle = serve(&server, 2);
    let body = query_body(Semantics::Strict);
    let mut stream = TcpStream::connect(handle.addr()).expect("connects");
    write!(
        stream,
        "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("request writes");
    // Give the worker a moment to pick the request up, then drain.
    std::thread::sleep(Duration::from_millis(100));
    handle.shutdown();
    let mut raw = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // The request completes — either answered just before the drain
    // kicked in (keep-alive, then closed as idle) or during it (the
    // response then carries `Connection: close`). Either way the drain
    // closes the socket, so read-to-EOF terminates with the answer.
    stream.read_to_string(&mut raw).expect("drain answers");
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
}

#[test]
fn reload_swaps_generations_and_pins_live_sessions_to_their_snapshot() {
    let old = system(10);
    let new = system(11); // different seed → different rules
    let server = ColarmServer::new(old.clone(), ServerConfig::default());
    let handle = serve(&server, 2);
    let body = query_body(Semantics::Unrestricted);

    // A session created on generation 1.
    let (status, _) = http(&handle, "POST", "/sessions", r#"{"id": "pinned"}"#);
    assert_eq!(status, 201);
    let (status, before) = http(&handle, "POST", "/sessions/pinned/query", &body);
    assert_eq!(status, 200, "{before}");

    // Reload: generation 2 serves new one-shot queries immediately.
    assert_eq!(server.reload_index(DEFAULT_INDEX, new.clone()), Some(2));
    let (status, one_shot) = http(&handle, "POST", "/query", &body);
    assert_eq!(status, 200);
    let request: QueryRequest = serde_json::from_str(&body).unwrap();
    let expected_new = new.run(&request).expect("in-process on new snapshot");
    assert_eq!(
        one_shot["rules"],
        serde_json::to_value(&expected_new.rules).unwrap(),
        "one-shot queries must route to the new generation"
    );

    // The live session still answers from the old snapshot, identically
    // to before the reload — zero disruption mid-drill-down.
    let (status, after) = http(&handle, "POST", "/sessions/pinned/query", &body);
    assert_eq!(status, 200);
    assert_eq!(before["rules"], after["rules"], "session switched snapshots");
    let expected_old = old.run(&request).expect("in-process on old snapshot");
    assert_eq!(
        after["rules"],
        serde_json::to_value(&expected_old.rules).unwrap()
    );

    // The old-generation session is visible as stale in /stats.
    let (_, stats) = http(&handle, "GET", "/stats", "");
    let summary = &stats["indexes"][DEFAULT_INDEX];
    assert_eq!(summary["generation"].as_u64(), Some(2));
    assert_eq!(summary["stale_sessions"].as_u64(), Some(1));
    handle.shutdown();
}

#[test]
fn reload_under_concurrent_load_drops_nothing() {
    let server = ColarmServer::new(system(20), ServerConfig::default());
    let handle = Arc::new(serve(&server, 4));
    let body = Arc::new(query_body(Semantics::Strict));

    // 6 clients hammer one-shot queries while the snapshot reloads
    // twice mid-stream; every request must complete with 200 (the
    // answers legitimately differ across generations).
    let clients: Vec<_> = (0..6)
        .map(|_| {
            let handle = handle.clone();
            let body = body.clone();
            std::thread::spawn(move || {
                let mut ok = 0u32;
                for _ in 0..10 {
                    let (status, response) = http(&handle, "POST", "/query", &body);
                    assert_eq!(status, 200, "dropped under reload: {response}");
                    ok += 1;
                }
                ok
            })
        })
        .collect();
    for round in 0..2u64 {
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(
            server.reload_index(DEFAULT_INDEX, system(21 + round)),
            Some(2 + round)
        );
    }
    let total: u32 = clients.into_iter().map(|c| c.join().expect("client")).sum();
    assert_eq!(total, 60);
    let generation = server.index_generation(DEFAULT_INDEX);
    assert_eq!(generation, Some(3));
    Arc::try_unwrap(handle)
        .unwrap_or_else(|_| panic!("clients hold the handle"))
        .shutdown();
}
