//! End-to-end checks over the three benchmark analogs at smoke scale:
//! index construction, plan agreement at the experiment grid corners, and
//! the Figure 13 freshness signal.

use colarm::PlanKind;
use colarm_bench::{all_specs, build_system, random_subset_spec, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn analogs_build_and_plans_agree_at_grid_corners() {
    for spec in all_specs(Scale::Smoke) {
        let system = build_system(&spec);
        assert!(system.index().num_mips() > 0, "{} indexes nothing", spec.name);
        let mut rng = StdRng::seed_from_u64(99);
        for &frac in &[spec.dq_fracs[0], spec.dq_fracs[3]] {
            let (range, subset) = random_subset_spec(
                system.index().dataset(),
                system.index().vertical(),
                frac,
                &mut rng,
            );
            if subset.is_empty() {
                continue;
            }
            for &minsupp in &[spec.minsupps[0], spec.minsupps[2]] {
                let query = colarm::LocalizedQuery::builder()
                    .range(range.clone())
                    .minsupp(minsupp)
                    .minconf(spec.minconf)
                    .build().unwrap();
                let answers = system.execute_all_plans(&query).expect("plans run");
                for a in &answers[1..] {
                    assert_eq!(
                        a.rules, answers[0].rules,
                        "{}: plan {} diverged at frac {frac} minsupp {minsupp}",
                        spec.name, a.plan
                    );
                }
            }
        }
    }
}

#[test]
fn optimizer_choice_is_reasonable_on_analogs() {
    // Not a tight claim (absolute timings are machine-noise-prone at smoke
    // scale); assert the chosen plan is never catastrophically worse than
    // the measured-fastest plan.
    for spec in all_specs(Scale::Smoke) {
        let system = build_system(&spec);
        let mut rng = StdRng::seed_from_u64(5);
        let (range, subset) = random_subset_spec(
            system.index().dataset(),
            system.index().vertical(),
            0.2,
            &mut rng,
        );
        if subset.is_empty() {
            continue;
        }
        let query = colarm::LocalizedQuery::builder()
            .range(range)
            .minsupp(spec.minsupps[1])
            .minconf(spec.minconf)
            .build().unwrap();
        let choice = system.optimizer().choose(system.index(), &query, &subset);
        let mut best = f64::INFINITY;
        let mut chosen_time = f64::INFINITY;
        for plan in PlanKind::ALL {
            let t = system
                .run(
                    &colarm::QueryRequest::query(&query)
                        .with_plan(plan)
                        .with_trace(true),
                )
                .expect("plan runs")
                .trace
                .expect("trace requested")
                .total
                .as_secs_f64();
            best = best.min(t);
            if plan == choice.chosen {
                chosen_time = t;
            }
        }
        assert!(
            chosen_time <= best * 50.0 + 0.05,
            "{}: chose {} at {chosen_time}s vs best {best}s",
            spec.name,
            choice.chosen
        );
    }
}

#[test]
fn localized_queries_surface_fresh_itemsets_on_analogs() {
    // The §5.3 signal: small subsets expose itemsets hidden globally.
    let mut any_fresh = false;
    for spec in all_specs(Scale::Smoke) {
        let system = build_system(&spec);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..4 {
            let (_, subset) = random_subset_spec(
                system.index().dataset(),
                system.index().vertical(),
                0.1,
                &mut rng,
            );
            if subset.is_empty() {
                continue;
            }
            let counts = colarm::paradox::local_vs_global_cfis(
                system.index(),
                &subset,
                spec.minsupps[0],
                spec.global_minsupp,
            );
            if counts.fresh_local > 0 {
                any_fresh = true;
            }
        }
    }
    assert!(any_fresh, "no analog exhibited Simpson's paradox at all");
}

#[test]
fn index_statistics_are_consistent_on_analogs() {
    for spec in all_specs(Scale::Smoke) {
        let system = build_system(&spec);
        let stats = system.index().stats();
        assert_eq!(stats.supports.len(), system.index().num_mips());
        assert!(stats.supports.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(stats.tree.height(), system.index().rtree().height());
        assert!(stats.avg_len >= 1.0);
        assert!(stats.max_len >= stats.avg_len as usize);
        assert_eq!(stats.num_records, system.index().dataset().num_records());
        // Every CFI meets the primary threshold.
        assert!(stats.supports.first().is_none_or(|&s| s as usize >= stats.primary_count));
    }
}
