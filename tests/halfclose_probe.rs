//! Temporary probe: does a client that half-closes (shutdown WR) after a
//! complete request still get a response?

use colarm::data::synth::{generate, SynthConfig};
use colarm::{Colarm, ColarmServer, MipIndexConfig, ServerConfig, ServerHandle, TransportConfig};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn shared_system() -> Arc<Colarm> {
    let dataset = generate(&SynthConfig {
        name: "probe".into(),
        seed: 5,
        records: 60,
        domains: vec![3, 4, 2],
        top_mass: 0.55,
        skew: 1.0,
        clusters: 2,
        cluster_focus: 0.6,
        focus_strength: 0.9,
        templates: 2,
        template_len: 3,
        template_prob: 0.3,
    });
    Colarm::build(
        dataset,
        MipIndexConfig {
            primary_support: 0.1,
            ..Default::default()
        },
    )
    .expect("index builds")
    .into_shared()
}

fn serve() -> ServerHandle {
    let server = ColarmServer::new(shared_system(), ServerConfig::default());
    let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
    server
        .serve_listener_with(listener, TransportConfig::default())
        .expect("starts")
}

#[test]
fn half_close_after_complete_request_still_gets_answered() {
    let handle = serve();
    let mut stream = TcpStream::connect(handle.addr()).expect("connects");
    stream
        .write_all(b"GET /health HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    // Sleep so the request bytes and the FIN arrive in separate read
    // batches on a slow machine... actually send FIN immediately to model
    // the common `send(); shutdown(WR); recv()` client.
    stream.shutdown(Shutdown::Write).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(3)))
        .unwrap();
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => break,
            Err(_) => break,
        }
    }
    let raw = String::from_utf8_lossy(&raw).into_owned();
    handle.shutdown();
    assert!(
        raw.starts_with("HTTP/1.1 200"),
        "half-closing client got no/&wrong response: {raw:?}"
    );
}
