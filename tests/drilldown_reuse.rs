//! Cross-query drill-down reuse is invisible in answers: a session that
//! derives focal subsets and restricted columns from cached parents must
//! produce results bit-identical to a cold session that scans everything
//! fresh — same rules, same subset tidsets (including representation),
//! same per-operator unit accounting. Randomized over datasets, refinement
//! shapes, and thresholds; plus a cancellation test pinning down that a
//! canceled drill-down publishes nothing into the column cache.

use colarm::data::synth::{generate, SynthConfig};
use colarm::data::{AttributeId, RangeSpec};
use colarm::{Colarm, ColarmError, LocalizedQuery, MipIndexConfig, QuerySession, Semantics};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn small_dataset(seed: u64, records: usize) -> colarm::data::Dataset {
    generate(&SynthConfig {
        name: format!("drill-{seed}"),
        seed,
        records,
        domains: vec![3, 4, 2, 5],
        top_mass: 0.55,
        skew: 1.0,
        clusters: 2,
        cluster_focus: 0.6,
        focus_strength: 0.9,
        templates: 3,
        template_len: 3,
        template_prob: 0.3,
    })
}

fn shared(seed: u64, records: usize) -> Arc<Colarm> {
    Colarm::build(
        small_dataset(seed, records),
        MipIndexConfig {
            primary_support: 0.1,
            ..Default::default()
        },
    )
    .expect("index builds")
    .into_shared()
}

/// Unrestricted semantics forces the ARM plan, so every execution runs
/// SELECT and exercises the column cache.
fn arm_query(range: &RangeSpec, minsupp: f64) -> LocalizedQuery {
    LocalizedQuery::builder()
        .range(range.clone())
        .minsupp(minsupp)
        .minconf(0.5)
        .semantics(Semantics::Unrestricted)
        .build()
        .expect("valid query")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn derived_subsets_and_answers_match_fresh_execution(
        seed in 0u64..3000,
        records in 40usize..120,
        keep0 in 1u16..3,
        keep1 in 1u16..4,
        shrink0 in proptest::bool::ANY,
        minsupp_pct in 20u32..70,
    ) {
        let colarm = shared(seed, records);
        let base_range =
            RangeSpec::all().with(AttributeId(0), (0..=keep0).collect::<Vec<_>>());
        // The refinement constrains a new attribute and optionally shrinks
        // the inherited one — both legal delta shapes.
        let refined0: Vec<u16> = if shrink0 { vec![0] } else { (0..=keep0).collect() };
        let refined_range = RangeSpec::all()
            .with(AttributeId(0), refined0)
            .with(AttributeId(1), (0..keep1).collect::<Vec<_>>());
        let fresh_refined = colarm
            .index()
            .resolve_subset(refined_range.clone())
            .expect("resolves");
        prop_assume!(!fresh_refined.is_empty());
        let minsupp = minsupp_pct as f64 / 100.0;
        let base_q = arm_query(&base_range, minsupp);
        let refined_q = arm_query(&refined_range, minsupp);

        // Warm session: base first, then the refinement — subset and
        // columns must both be served by derivation, not fresh scans.
        let warm = QuerySession::new(colarm.clone());
        warm.execute(&base_q).expect("base runs");
        let drilled = warm.execute(&refined_q).expect("refined runs");
        let stats = warm.stats();
        prop_assert_eq!(stats.subsets_derived, 1);
        prop_assert_eq!(stats.columns_derived, 1);
        prop_assert_eq!(stats.subset_misses, 1);
        prop_assert_eq!(stats.column_misses, 1);

        // The derived subset is bitwise the fresh resolution — content,
        // overall kind, AND the per-chunk container shape. Derivation
        // subtracts/intersects cached parents, so this pins down that the
        // canonical container rule is a pure function of contents, not of
        // the operation history that produced them.
        let derived_subset = warm.subset(&refined_range).expect("cached");
        prop_assert_eq!(derived_subset.tids(), fresh_refined.tids());
        prop_assert_eq!(derived_subset.tids().kind(), fresh_refined.tids().kind());
        prop_assert_eq!(derived_subset.tids().shape(), fresh_refined.tids().shape());

        // The drilled answer is bit-identical to a cold session's.
        let cold = QuerySession::new(colarm.clone());
        let fresh_answer = cold.execute(&refined_q).expect("cold runs");
        prop_assert_eq!(&drilled.rules, &fresh_answer.rules);
        prop_assert_eq!(drilled.subset_size, fresh_answer.subset_size);
        prop_assert_eq!(drilled.trace.ops.len(), fresh_answer.trace.ops.len());
        for (a, b) in drilled.trace.ops.iter().zip(&fresh_answer.trace.ops) {
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(
                a.units.to_bits(),
                b.units.to_bits(),
                "{} unit accounting drifted",
                a.kind
            );
        }
    }
}

/// The derived container shapes (and everything downstream of them) must
/// not depend on worker-pool width: a drill-down executed at 1, 2 and 8
/// threads produces bit-identical rules and byte-identical per-chunk
/// subset shapes to each other and to a fresh resolution.
#[test]
fn derived_shapes_are_stable_across_thread_counts() {
    let colarm = shared(7, 110);
    let base_range = RangeSpec::all().with(AttributeId(0), [0u16, 1]);
    let refined_range = RangeSpec::all()
        .with(AttributeId(0), [0u16, 1])
        .with(AttributeId(1), [0u16, 1, 2]);
    let fresh = colarm
        .index()
        .resolve_subset(refined_range.clone())
        .expect("resolves");
    let base_q = arm_query(&base_range, 0.25);
    let refined_q = arm_query(&refined_range, 0.25);
    let mut reference: Option<(Vec<_>, _)> = None;
    for threads in [1usize, 2, 8] {
        let session = QuerySession::new(colarm.clone());
        session.set_threads(threads);
        session.execute(&base_q).expect("base runs");
        let drilled = session.execute(&refined_q).expect("refined runs");
        assert_eq!(session.stats().subsets_derived, 1, "{threads} threads");
        let derived = session.subset(&refined_range).expect("cached");
        assert_eq!(derived.tids(), fresh.tids(), "{threads} threads");
        assert_eq!(
            derived.tids().shape(),
            fresh.tids().shape(),
            "container shape drifted at {threads} threads"
        );
        match &reference {
            None => reference = Some((drilled.rules.clone(), fresh.tids().shape())),
            Some((rules, shape)) => {
                assert_eq!(&drilled.rules, rules, "{threads} threads");
                assert_eq!(&derived.tids().shape(), shape, "{threads} threads");
            }
        }
    }
}

#[test]
fn canceled_drill_down_publishes_nothing_into_the_column_cache() {
    let colarm = shared(99, 80);
    let base_range = RangeSpec::all().with(AttributeId(0), [0u16, 1]);
    let refined_range = RangeSpec::all()
        .with(AttributeId(0), [0u16, 1])
        .with(AttributeId(1), [0u16, 1]);
    let base_q = arm_query(&base_range, 0.3);
    let refined_q = arm_query(&refined_range, 0.3);
    let session = QuerySession::new(colarm.clone());
    session.execute(&base_q).unwrap();
    assert_eq!(session.stats().column_misses, 1);

    // Zero deadline: the engine cancels before SELECT completes, so the
    // column store must see no publish and count no derivation.
    session.set_timeout(Some(Duration::ZERO));
    let err = session.execute(&refined_q).unwrap_err();
    assert!(matches!(err, ColarmError::Canceled { .. }), "got {err:?}");
    let after = session.stats();
    assert_eq!(after.column_misses, 1, "canceled run published a fresh scan");
    assert_eq!(after.columns_derived, 0, "canceled run published a derivation");
    assert_eq!(after.answer_misses, 1, "canceled run cached an answer");

    // Lifting the deadline re-executes fully; only now does the derived
    // materialization land in the cache, and the answer matches a cold run.
    session.set_timeout(None);
    let drilled = session.execute(&refined_q).unwrap();
    assert_eq!(session.stats().columns_derived, 1);
    let cold = QuerySession::new(colarm).execute(&refined_q).unwrap();
    assert_eq!(drilled.rules, cold.rules);
}
