//! `EXPLAIN ANALYZE` end-to-end: every plan produces a per-operator
//! predicted-vs-actual report; the execution counters are bit-identical at
//! any thread count; and the report's unit accounting agrees with both
//! the execution trace and the optimizer's feedback log.

use colarm::data::synth::{generate, SynthConfig};
use colarm::{
    Colarm, LocalizedQuery, MipIndexConfig, OpMetrics, PlanKind, QueryRequest, QuerySession,
};

/// Dense enough that the operators' internal parallelism thresholds are
/// crossed, so threads > 1 genuinely exercise the parallel code paths.
fn system() -> Colarm {
    let dataset = generate(&SynthConfig {
        name: "analyze".into(),
        seed: 41,
        records: 600,
        domains: vec![3, 3, 4, 2, 3, 2],
        top_mass: 0.6,
        skew: 1.0,
        clusters: 2,
        cluster_focus: 0.5,
        focus_strength: 0.9,
        templates: 4,
        template_len: 3,
        template_prob: 0.3,
    });
    Colarm::build(
        dataset,
        MipIndexConfig {
            primary_support: 0.05,
            ..Default::default()
        },
    )
    .unwrap()
}

fn query(colarm: &Colarm) -> LocalizedQuery {
    let schema = colarm.index().dataset().schema().clone();
    LocalizedQuery::builder()
        .range_named(&schema, "a0", &["v0", "v1"])
        .unwrap()
        .minsupp(0.2)
        .minconf(0.6)
        .build()
        .unwrap()
}

#[test]
fn every_plan_yields_a_full_report() {
    let colarm = system();
    let q = query(&colarm);
    let mut rules = None;
    for plan in PlanKind::ALL {
        let out = colarm
            .run(
                &QueryRequest::query(&q)
                    .with_plan(plan)
                    .with_analyze(true)
                    .with_trace(true),
            )
            .unwrap();
        let report = out.analyze.as_ref().expect("analyze report present");
        assert_eq!(report.plan, plan);
        assert_eq!(report.num_rules, out.rules.len());
        assert_eq!(report.estimates.len(), PlanKind::ALL.len());
        assert!(!report.ops.is_empty());
        // ANALYZE forces metrics reporting on: every row carries counters.
        assert!(report.ops.iter().all(|o| o.metrics.is_some()), "{plan}");
        // The report's unit accounting is the trace's unit accounting.
        assert_eq!(
            report.total_measured_units(),
            out.trace.as_ref().expect("trace requested").total_units(),
            "{plan}"
        );
        // A prediction appears exactly where the cost model has a term.
        let choice = out.choice.as_ref().expect("optimizer ran");
        let estimate = choice.estimate_for(plan);
        for op in &report.ops {
            assert_eq!(
                op.predicted_units.is_some(),
                estimate.term(op.op).is_some(),
                "{plan} {}",
                op.op
            );
        }
        // The report round-trips through JSON.
        let value: serde_json::Value = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(value["ops"].as_array().unwrap().len(), report.ops.len());
        // All plans agree on the rules (the determinism contract).
        match &rules {
            None => rules = Some(out.rules.clone()),
            Some(r) => assert_eq!(&out.rules, r, "{plan} diverged"),
        }
    }
}

#[test]
fn counters_are_bit_identical_at_every_thread_count() {
    let colarm = system().into_shared();
    let q = query(&colarm);
    for plan in PlanKind::ALL {
        let mut reference: Option<Vec<(&'static str, f64, OpMetrics)>> = None;
        for threads in [1usize, 2, 8] {
            // A fresh session per run: the per-session thread cap is the
            // one execution knob the request deliberately doesn't carry,
            // and a fresh session has no caches to blur the counters.
            let session = QuerySession::new(colarm.clone());
            session.set_threads(threads);
            let out = session
                .run(&QueryRequest::query(&q).with_plan(plan).with_analyze(true))
                .unwrap();
            let observed: Vec<(&'static str, f64, OpMetrics)> = out
                .analyze
                .expect("analyze report present")
                .ops
                .iter()
                .map(|o| (o.op.name(), o.measured_units, o.metrics.unwrap()))
                .collect();
            match &reference {
                None => reference = Some(observed),
                Some(r) => assert_eq!(
                    &observed, r,
                    "{plan} at {threads} threads diverged from 1 thread"
                ),
            }
        }
    }
}

#[test]
fn report_units_match_the_feedback_log_accounting() {
    let colarm = system();
    let q = query(&colarm);
    let out = colarm
        .run(&QueryRequest::query(&q).with_analyze(true))
        .unwrap();
    let report = out.analyze.expect("analyze report present");
    let choice = out.choice.expect("optimizer ran");
    assert!(report.chosen_by_optimizer);
    assert_eq!(report.plan, choice.chosen);
    let entries = colarm.feedback().snapshot();
    let entry = entries.last().unwrap();
    assert_eq!(entry.chosen, report.plan);
    assert_eq!(entry.total_units(), report.total_measured_units());
    assert_eq!(entry.predicted.len(), PlanKind::ALL.len());
    // The aggregated counters are non-trivial: work actually happened.
    let totals = report.metrics_total();
    assert!(totals.scanned > 0);
    assert!(totals.emitted > 0);
}
