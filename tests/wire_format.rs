//! Wire-format stability for the unified query API.
//!
//! The JSON shapes of [`QueryRequest`], [`QueryOutcome`], and
//! [`QueryLimits`] ARE the server protocol: a renamed field silently
//! breaks every deployed client. The golden fixture in
//! `tests/fixtures/query_request.json` pins the request schema — if one
//! of these tests fails after an edit, that edit changed the wire format
//! and needs a protocol version bump, not a fixture update.

use colarm::{
    Colarm, LocalizedQuery, MipIndexConfig, PlanKind, QueryLimits, QueryRequest,
};
use std::time::Duration;

const GOLDEN_REQUEST: &str = include_str!("fixtures/query_request.json");

fn system() -> Colarm {
    Colarm::build(
        colarm::data::synth::salary(),
        MipIndexConfig {
            primary_support: 2.0 / 11.0,
            ..Default::default()
        },
    )
    .expect("salary index builds")
}

/// The request the golden fixture encodes, built through the public API.
fn golden_request(colarm: &Colarm) -> QueryRequest {
    let schema = colarm.index().dataset().schema().clone();
    let query = LocalizedQuery::builder()
        .range_named(&schema, "Location", &["Seattle"])
        .unwrap()
        .range_named(&schema, "Gender", &["F"])
        .unwrap()
        .item_attrs_named(&schema, &["Age", "Salary"])
        .unwrap()
        .minsupp(0.75)
        .minconf(0.9)
        .build()
        .unwrap();
    QueryRequest::query(&query)
        .with_plan(PlanKind::SsEv)
        .with_limits(
            QueryLimits::none()
                .with_timeout(Duration::from_millis(250))
                .with_budget_units(1.5),
        )
        .with_metrics(true)
        .with_trace(true)
}

#[test]
fn request_serialization_matches_the_golden_fixture() {
    let colarm = system();
    let built = serde_json::to_value(golden_request(&colarm)).unwrap();
    let golden: serde_json::Value = serde_json::from_str(GOLDEN_REQUEST).unwrap();
    assert_eq!(
        built, golden,
        "QueryRequest wire format drifted from tests/fixtures/query_request.json"
    );
}

#[test]
fn golden_fixture_deserializes_to_the_same_request() {
    let colarm = system();
    let parsed: QueryRequest = serde_json::from_str(GOLDEN_REQUEST).unwrap();
    assert_eq!(
        serde_json::to_value(&parsed).unwrap(),
        serde_json::to_value(golden_request(&colarm)).unwrap()
    );
    // The fixture's 1.5-unit budget is live after deserialization: the
    // forced SsEv run is canceled mid-plan, proving limits cross the wire.
    assert!(matches!(
        colarm.run(&parsed),
        Err(colarm::ColarmError::Canceled { .. })
    ));
    // Without the budget, the parsed request executes the forced plan.
    let mut unlimited = parsed.clone();
    unlimited.limits = None;
    let out = colarm.run(&unlimited).unwrap();
    assert_eq!(out.plan, PlanKind::SsEv);
    assert_eq!(out.subset_size, 4);
}

#[test]
fn outcome_round_trips_bit_identically() {
    let colarm = system();
    let mut request = golden_request(&colarm).with_analyze(true);
    request.limits = None; // the golden budget would cancel the run
    let out = colarm.run(&request).unwrap();
    let json = serde_json::to_string(&out).unwrap();
    let back: colarm::QueryOutcome = serde_json::from_str(&json).unwrap();
    assert_eq!(
        serde_json::to_value(&back).unwrap(),
        serde_json::to_value(&out).unwrap(),
        "QueryOutcome must survive serialize → deserialize unchanged"
    );
    // Pin the outcome's top-level field names: this set is the protocol.
    let value: serde_json::Value = serde_json::from_str(&json).unwrap();
    for field in ["plan", "subset_size", "rules", "choice", "trace", "analyze", "session"] {
        assert!(value.get(field).is_some(), "outcome lost field `{field}`");
    }
}

#[test]
fn limits_round_trip_and_default_to_none() {
    let limits = QueryLimits::none()
        .with_timeout(Duration::from_secs(2))
        .with_budget_units(42.0);
    let value = serde_json::to_value(&limits).unwrap();
    assert_eq!(value["timeout_ns"].as_u64(), Some(2_000_000_000));
    assert_eq!(value["budget_units"].as_f64(), Some(42.0));
    let back: QueryLimits = serde_json::from_value(value).unwrap();
    assert_eq!(back.timeout, limits.timeout);
    assert_eq!(back.budget_units, limits.budget_units);

    let none: QueryLimits = serde_json::from_str(
        r#"{"timeout_ns": null, "budget_units": null}"#,
    )
    .unwrap();
    assert_eq!(none.timeout, None);
    assert_eq!(none.budget_units, None);
}

#[test]
fn unknown_request_fields_are_rejected_not_ignored() {
    // A typo'd client field must fail loudly: silently dropping it would
    // run a different query than the client asked for.
    let err = serde_json::from_str::<QueryRequest>(r#"{"plon": "Sev"}"#);
    assert!(err.is_err(), "unknown field must be rejected");
}
