//! Connection-layer behavior of the worker-pool HTTP transport, over
//! real sockets: framing edge cases, read/write timeouts, slowloris
//! reaping, keep-alive and pipelining semantics.

use colarm::data::synth::{generate, SynthConfig};
use colarm::{Colarm, ColarmServer, ServerConfig, ServerHandle, TransportConfig};
use colarm::MipIndexConfig;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn shared_system() -> Arc<Colarm> {
    let dataset = generate(&SynthConfig {
        name: "server-http".into(),
        seed: 5,
        records: 60,
        domains: vec![3, 4, 2],
        top_mass: 0.55,
        skew: 1.0,
        clusters: 2,
        cluster_focus: 0.6,
        focus_strength: 0.9,
        templates: 2,
        template_len: 3,
        template_prob: 0.3,
    });
    Colarm::build(
        dataset,
        MipIndexConfig {
            primary_support: 0.1,
            ..Default::default()
        },
    )
    .expect("index builds")
    .into_shared()
}

fn serve(config: TransportConfig) -> ServerHandle {
    let server = ColarmServer::new(shared_system(), ServerConfig::default());
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port binds");
    server
        .serve_listener_with(listener, config)
        .expect("transport starts")
}

fn quick_timeouts() -> TransportConfig {
    TransportConfig {
        workers: 1,
        read_timeout: Duration::from_millis(400),
        write_timeout: Duration::from_secs(5),
        idle_conn_ttl: Duration::from_millis(400),
    }
}

/// Read until the peer closes; fails the test if nothing arrives within
/// `patience`.
fn read_to_close(stream: &mut TcpStream, patience: Duration) -> String {
    stream
        .set_read_timeout(Some(patience))
        .expect("read timeout sets");
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                panic!("peer neither answered nor closed within {patience:?}; got {raw:?}")
            }
            Err(e) if e.kind() == ErrorKind::ConnectionReset => break,
            Err(e) => panic!("read failed: {e}"),
        }
    }
    String::from_utf8_lossy(&raw).into_owned()
}

fn connect(handle: &ServerHandle) -> TcpStream {
    TcpStream::connect(handle.addr()).expect("connects")
}

#[test]
fn health_roundtrip_and_shutdown_joins() {
    let handle = serve(TransportConfig {
        workers: 2,
        ..TransportConfig::default()
    });
    let mut stream = connect(&handle);
    stream
        .write_all(b"GET /health HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let raw = read_to_close(&mut stream, Duration::from_secs(5));
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    assert!(raw.contains(r#""status":"ok""#), "{raw}");
    let addr = handle.addr();
    handle.shutdown();
    // The listener is gone: a fresh connection is refused (or, if the
    // OS briefly keeps the port, the socket closes without an answer).
    match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
        Err(_) => {}
        Ok(mut stream) => {
            stream
                .write_all(b"GET /health HTTP/1.1\r\n\r\n")
                .unwrap_or(());
            let raw = read_to_close(&mut stream, Duration::from_secs(2));
            assert!(raw.is_empty(), "a drained server answered: {raw}");
        }
    }
}

#[test]
fn header_line_at_exactly_max_line_is_accepted_and_one_more_rejected() {
    let handle = serve(TransportConfig::default());
    let max_line = colarm::server::http::MAX_LINE;

    let mut request = b"GET /health HTTP/1.1\r\nConnection: close\r\nX-Pad: ".to_vec();
    request.extend(std::iter::repeat_n(b'a', max_line - "X-Pad: ".len()));
    request.extend_from_slice(b"\r\n\r\n");
    let mut stream = connect(&handle);
    stream.write_all(&request).unwrap();
    let raw = read_to_close(&mut stream, Duration::from_secs(5));
    assert!(raw.starts_with("HTTP/1.1 200"), "{}", &raw[..raw.len().min(200)]);

    let mut request = b"GET /health HTTP/1.1\r\nConnection: close\r\nX-Pad: ".to_vec();
    request.extend(std::iter::repeat_n(b'a', max_line - "X-Pad: ".len() + 1));
    request.extend_from_slice(b"\r\n\r\n");
    let mut stream = connect(&handle);
    stream.write_all(&request).unwrap();
    let raw = read_to_close(&mut stream, Duration::from_secs(5));
    assert!(raw.starts_with("HTTP/1.1 400"), "{}", &raw[..raw.len().min(200)]);
    handle.shutdown();
}

#[test]
fn content_length_longer_than_body_gets_408_not_a_hang() {
    let handle = serve(quick_timeouts());
    let mut stream = connect(&handle);
    // Claims 100 bytes, sends 3, then stalls.
    stream
        .write_all(b"POST /query HTTP/1.1\r\nContent-Length: 100\r\n\r\nabc")
        .unwrap();
    let started = Instant::now();
    let raw = read_to_close(&mut stream, Duration::from_secs(5));
    assert!(raw.starts_with("HTTP/1.1 408"), "{raw}");
    assert!(raw.contains("request_timeout"), "{raw}");
    // Answered promptly after the read deadline, not at some larger
    // multiple of it.
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "408 took {:?}",
        started.elapsed()
    );
    handle.shutdown();
}

#[test]
fn trickle_writer_is_cut_off_by_the_total_request_deadline() {
    let handle = serve(quick_timeouts());
    let mut stream = connect(&handle);
    // One byte every 60ms never finishes a request under a 400ms total
    // deadline, even though the connection is never idle — the
    // classic slowloris pattern.
    let request = b"GET /health HTTP/1.1\r\nHost: local\r\n\r\n";
    let mut got = None;
    for byte in request {
        if stream.write_all(&[*byte]).is_err() {
            got = Some(String::new());
            break;
        }
        std::thread::sleep(Duration::from_millis(60));
        // Poll for an early 408 so the response is not raced away.
        stream
            .set_read_timeout(Some(Duration::from_millis(1)))
            .unwrap();
        let mut buf = [0u8; 2048];
        match stream.read(&mut buf) {
            Ok(n) if n > 0 => {
                got = Some(String::from_utf8_lossy(&buf[..n]).into_owned());
                break;
            }
            _ => {}
        }
    }
    let raw = match got {
        Some(raw) if !raw.is_empty() => raw,
        _ => read_to_close(&mut stream, Duration::from_secs(5)),
    };
    assert!(
        raw.is_empty() || raw.starts_with("HTTP/1.1 408"),
        "trickling client got: {raw}"
    );
    handle.shutdown();
}

#[test]
fn silent_client_is_reaped_and_the_worker_keeps_serving() {
    let handle = serve(quick_timeouts()); // one worker
    // A slowloris connection that never sends a byte.
    let mut idle = connect(&handle);
    // It is reaped silently — EOF, no 408 (no request ever started).
    let raw = read_to_close(&mut idle, Duration::from_secs(5));
    assert_eq!(raw, "", "idle reap must not write a response");
    // The single worker is free again and serves a real request.
    let mut stream = connect(&handle);
    stream
        .write_all(b"GET /health HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let raw = read_to_close(&mut stream, Duration::from_secs(5));
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    let stats = handle.stats();
    assert!(
        stats.idle_reaped.load(std::sync::atomic::Ordering::Relaxed) >= 1,
        "reap not counted"
    );
    handle.shutdown();
}

#[test]
fn half_close_after_complete_request_still_gets_answered() {
    let handle = serve(TransportConfig::default());
    let mut stream = connect(&handle);
    // The common `send(); shutdown(WR); recv()` client: the request and
    // the FIN can land in the same read batch, and the response must
    // still go out before the server hangs up.
    stream
        .write_all(b"GET /health HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let raw = read_to_close(&mut stream, Duration::from_secs(5));
    assert!(
        raw.starts_with("HTTP/1.1 200"),
        "half-closing client got no/wrong response: {raw:?}"
    );
    handle.shutdown();
}

#[test]
fn http_1_0_requests_default_to_close() {
    let handle = serve(TransportConfig::default());
    let mut stream = connect(&handle);
    stream
        .write_all(b"GET /health HTTP/1.0\r\n\r\n")
        .unwrap();
    // No `Connection: close` sent, yet the server must close.
    let raw = read_to_close(&mut stream, Duration::from_secs(5));
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    assert!(raw.contains("Connection: close"), "{raw}");
    handle.shutdown();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let handle = serve(TransportConfig::default());
    let mut stream = connect(&handle);
    stream
        .write_all(
            b"GET /health HTTP/1.1\r\n\r\nGET /stats HTTP/1.1\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
    let raw = read_to_close(&mut stream, Duration::from_secs(5));
    let statuses: Vec<&str> = raw
        .split("HTTP/1.1 ")
        .skip(1)
        .map(|part| part.split_whitespace().next().unwrap())
        .collect();
    assert_eq!(statuses, ["200", "200"], "{raw}");
    assert!(raw.contains(r#""status":"ok""#), "{raw}");
    assert!(raw.contains("uptime_ms"), "{raw}");
    handle.shutdown();
}

#[test]
fn a_400_closes_the_connection_and_drops_the_pipelined_followup() {
    let handle = serve(TransportConfig::default());
    let mut stream = connect(&handle);
    // First request is unframeable garbage; a valid request is already
    // pipelined behind it. The server must answer 400 once and close —
    // it cannot trust the framing of anything after the garbage.
    stream
        .write_all(b"garbage\r\n\r\nGET /health HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let raw = read_to_close(&mut stream, Duration::from_secs(5));
    let responses = raw.matches("HTTP/1.1 ").count();
    assert_eq!(responses, 1, "{raw}");
    assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
    assert!(raw.contains("Connection: close"), "{raw}");
    handle.shutdown();
}

#[test]
fn keep_alive_survives_a_404_and_serves_the_next_request() {
    let handle = serve(TransportConfig::default());
    let mut stream = connect(&handle);
    // A well-framed request for a missing route is an application
    // error, not a protocol error: keep-alive continues.
    stream
        .write_all(b"GET /nope HTTP/1.1\r\n\r\n")
        .unwrap();
    let mut first = vec![0u8; 1];
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream.read_exact(&mut first).unwrap();
    stream
        .write_all(b"GET /health HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let rest = read_to_close(&mut stream, Duration::from_secs(5));
    let raw = format!("{}{rest}", first[0] as char);
    assert!(raw.starts_with("HTTP/1.1 404"), "{raw}");
    assert!(raw.contains("HTTP/1.1 200"), "{raw}");
    handle.shutdown();
}
