//! Experiment T1: the paper's §1.1 walkthrough numbers on the Table 1
//! salary dataset, end to end through the public API.

use colarm::{Colarm, LocalizedQuery, MipIndexConfig, PlanKind, QueryRequest};

fn system() -> Colarm {
    Colarm::build(
        colarm::data::synth::salary(),
        MipIndexConfig {
            primary_support: 2.0 / 11.0,
            ..Default::default()
        },
    )
    .expect("salary index builds")
}

#[test]
fn rg_holds_globally_with_paper_numbers() {
    // RG = (A0 → S2): 45% support (5/11), 83% confidence (5/6).
    let colarm = system();
    let schema = colarm.index().dataset().schema().clone();
    let query = LocalizedQuery::builder().minsupp(0.45).minconf(0.8).build().unwrap();
    let out = colarm.run(&QueryRequest::query(&query)).expect("global query runs");
    let a0 = schema.encode_named("Age", "20-30").unwrap();
    let s2 = schema.encode_named("Salary", "90K-120K").unwrap();
    let rg = out
        .rules
        .iter()
        .find(|r| r.antecedent.contains(a0) && r.consequent.contains(s2))
        .expect("RG is mined globally");
    assert_eq!(rg.counts.body, 5);
    assert_eq!(rg.counts.antecedent, 6);
    assert_eq!(rg.counts.universe, 11);
    assert!((rg.support() - 5.0 / 11.0).abs() < 1e-12);
    assert!((rg.confidence() - 5.0 / 6.0).abs() < 1e-12);
}

#[test]
fn rl_emerges_in_the_seattle_female_subset() {
    // RL = (A1 → S2): 75% support (3/4), 100% confidence (3/3) for the
    // last four records.
    let colarm = system();
    let schema = colarm.index().dataset().schema().clone();
    let query = LocalizedQuery::builder()
        .range_named(&schema, "Location", &["Seattle"])
        .unwrap()
        .range_named(&schema, "Gender", &["F"])
        .unwrap()
        .minsupp(0.75)
        .minconf(0.9)
        .build().unwrap();
    let out = colarm.run(&QueryRequest::query(&query)).expect("localized query runs");
    assert_eq!(out.subset_size, 4);
    let a1 = schema.encode_named("Age", "30-40").unwrap();
    let s2 = schema.encode_named("Salary", "90K-120K").unwrap();
    let rl = out
        .rules
        .iter()
        .find(|r| r.antecedent.contains(a1) && r.consequent.contains(s2))
        .expect("RL is mined locally");
    assert_eq!(rl.counts.body, 3);
    assert_eq!(rl.counts.antecedent, 3);
    assert_eq!(rl.counts.universe, 4);
    assert!((rl.support() - 0.75).abs() < 1e-12);
    assert!((rl.confidence() - 1.0).abs() < 1e-12);
    // And RG does NOT hold in this subset: no rule with antecedent A0.
    let a0 = schema.encode_named("Age", "20-30").unwrap();
    assert!(
        !out.rules.iter().any(|r| r.antecedent.contains(a0)),
        "the global trend must vanish locally (Simpson's paradox)"
    );
}

#[test]
fn rl_is_invisible_to_global_mining_above_27_percent() {
    // Paper: RL stays hidden globally unless minsupport drops below 27%
    // (3/11). Check both sides of that boundary.
    let colarm = system();
    let schema = colarm.index().dataset().schema().clone();
    let a1 = schema.encode_named("Age", "30-40").unwrap();
    let s2 = schema.encode_named("Salary", "90K-120K").unwrap();
    let find_rl = |minsupp: f64| {
        let query = LocalizedQuery::builder().minsupp(minsupp).minconf(0.7).build().unwrap();
        let out = colarm.run(&QueryRequest::query(&query)).expect("global query runs");
        out.rules
            .iter()
            .any(|r| r.antecedent.contains(a1) && r.consequent.contains(s2))
    };
    assert!(!find_rl(0.28), "RL must be hidden at minsupp 28%");
    assert!(find_rl(0.26), "RL must appear once minsupp < 3/11");
}

#[test]
fn every_plan_reproduces_the_walkthrough() {
    let colarm = system();
    let schema = colarm.index().dataset().schema().clone();
    let query = LocalizedQuery::builder()
        .range_named(&schema, "Location", &["Seattle"])
        .unwrap()
        .range_named(&schema, "Gender", &["F"])
        .unwrap()
        .minsupp(0.75)
        .minconf(0.9)
        .build().unwrap();
    let answers = colarm.execute_all_plans(&query).expect("all plans run");
    assert_eq!(answers.len(), PlanKind::ALL.len());
    for pair in answers.windows(2) {
        assert_eq!(pair[0].rules, pair[1].rules);
    }
    assert!(!answers[0].rules.is_empty());
}
