//! The flagship property of the COLARM reproduction: all six mining plans
//! return identical rule sets on arbitrary datasets and queries (they may
//! only differ in cost). Randomized datasets come from the synthetic
//! generator; queries vary range selections, item attributes and
//! thresholds.

use colarm::{Colarm, LocalizedQuery, MipIndexConfig, Packing, PlanKind};
use colarm::data::synth::{generate, SynthConfig};
use colarm::data::{AttributeId, RangeSpec};
use proptest::prelude::*;

fn small_dataset(seed: u64, records: usize, domains: Vec<usize>) -> colarm::data::Dataset {
    generate(&SynthConfig {
        name: format!("prop-{seed}"),
        seed,
        records,
        domains,
        top_mass: 0.55,
        skew: 1.0,
        clusters: 2,
        cluster_focus: 0.6,
        focus_strength: 0.9,
        templates: 3,
        template_len: 3,
        template_prob: 0.3,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_plans_agree_on_random_queries(
        seed in 0u64..5000,
        records in 40usize..150,
        primary_pct in 5u32..30,
        minsupp_pct in 30u32..90,
        minconf_pct in 50u32..95,
        constrained in proptest::collection::vec((0usize..4, 1usize..3), 0..3),
        restrict_items in proptest::bool::ANY,
    ) {
        let dataset = small_dataset(seed, records, vec![3, 4, 2, 5]);
        let colarm = Colarm::build(
            dataset,
            MipIndexConfig {
                primary_support: primary_pct as f64 / 100.0,
                ..Default::default()
            },
        )
        .expect("index builds");
        let schema = colarm.index().dataset().schema().clone();
        let mut range = RangeSpec::all();
        for (attr, keep) in constrained {
            let aid = AttributeId(attr as u16);
            let dom = schema.attribute(aid).domain_size();
            let values: Vec<u16> = (0..keep.min(dom) as u16).collect();
            range = range.with(aid, values);
        }
        let mut builder = LocalizedQuery::builder()
            .range(range)
            .minsupp(minsupp_pct as f64 / 100.0)
            .minconf(minconf_pct as f64 / 100.0);
        if restrict_items {
            builder = builder.item_attrs([AttributeId(1), AttributeId(3)]);
        }
        let query = builder.build().expect("valid query");
        let subset = colarm.index().resolve_subset(query.range.clone()).expect("resolves");
        prop_assume!(!subset.is_empty());
        let answers: Vec<_> = PlanKind::ALL
            .iter()
            .map(|&p| {
                colarm
                    .run(&colarm::QueryRequest::query(&query).with_plan(p))
                    .expect("plan runs")
            })
            .collect();
        for a in &answers[1..] {
            prop_assert_eq!(&a.rules, &answers[0].rules, "plan {} diverged", a.plan);
        }
        // Invariants on whatever came out.
        for rule in &answers[0].rules {
            prop_assert!(rule.support() >= query.minsupp - 1e-9);
            prop_assert!(rule.confidence() >= query.minconf - 1e-9);
            prop_assert!(rule.counts.universe == subset.len());
            prop_assert!(!rule.antecedent.is_empty() && !rule.consequent.is_empty());
            if restrict_items {
                for &item in rule.body().items() {
                    let a = schema.item_attribute(item);
                    prop_assert!(a == AttributeId(1) || a == AttributeId(3));
                }
            }
        }
    }

    #[test]
    fn packing_choice_never_changes_answers(
        seed in 0u64..1000,
        minsupp_pct in 40u32..80,
    ) {
        let mk = |packing| {
            Colarm::build(
                small_dataset(seed, 80, vec![3, 4, 2, 5]),
                MipIndexConfig {
                    primary_support: 0.1,
                    packing,
                    ..Default::default()
                },
            )
            .expect("index builds")
        };
        let a = mk(Packing::Str);
        let b = mk(Packing::Hilbert);
        let c = mk(Packing::Insertion);
        let schema = a.index().dataset().schema().clone();
        let query = LocalizedQuery::builder()
            .range(RangeSpec::all().with(AttributeId(0), [0u16, 1]))
            .minsupp(minsupp_pct as f64 / 100.0)
            .minconf(0.7)
            .build().unwrap();
        let _ = &schema;
        let forced = colarm::QueryRequest::query(&query).with_plan(PlanKind::SsEuv);
        let ra = a.run(&forced).expect("runs");
        let rb = b.run(&forced).expect("runs");
        let rc = c.run(&forced).expect("runs");
        prop_assert_eq!(&ra.rules, &rb.rules);
        prop_assert_eq!(&ra.rules, &rc.rules);
    }
}
