//! Cross-crate checks of the cost model calibration, the optimizer's
//! decision quality at smoke scale, index persistence, and the
//! multi-query session cache.

use colarm::{Colarm, IndexSnapshot, LocalizedQuery, PlanKind, QueryRequest, QuerySession};
use colarm_bench::{build_system, mushroom_spec, random_subset_spec, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn calibrated_estimates_are_in_a_sane_range() {
    // After calibration, each plan's estimate should be within a couple of
    // orders of magnitude of its measured time — enough for argmin plan
    // selection to be meaningful (the paper's accuracy experiment), while
    // staying robust to CI noise.
    let spec = mushroom_spec(Scale::Smoke);
    let system = build_system(&spec);
    let mut rng = StdRng::seed_from_u64(17);
    let (range, subset) = random_subset_spec(
        system.index().dataset(),
        system.index().vertical(),
        0.2,
        &mut rng,
    );
    let query = LocalizedQuery::builder()
        .range(range)
        .minsupp(spec.minsupps[1])
        .minconf(spec.minconf)
        .build().unwrap();
    let choice = system.optimizer().choose(system.index(), &query, &subset);
    for plan in PlanKind::ALL {
        let est = choice.estimate_for(plan).total();
        assert!(est.is_finite() && est > 0.0, "{plan}: estimate {est}");
        let measured = system
            .run(&QueryRequest::query(&query).with_plan(plan).with_trace(true))
            .unwrap()
            .trace
            .unwrap()
            .total
            .as_secs_f64();
        let ratio = (est / measured.max(1e-7)).max(measured.max(1e-7) / est);
        assert!(
            ratio < 1e4,
            "{plan}: estimate {est:.2e}s vs measured {measured:.2e}s (ratio {ratio:.0})"
        );
    }
}

#[test]
fn snapshot_restores_a_working_system() {
    let spec = mushroom_spec(Scale::Smoke);
    let system = build_system(&spec);
    let json = IndexSnapshot::capture(system.index()).to_json().unwrap();
    let restored = Colarm::from_index(
        IndexSnapshot::from_json(&json).unwrap().restore().unwrap(),
    );
    assert_eq!(restored.index().num_mips(), system.index().num_mips());
    let mut rng = StdRng::seed_from_u64(23);
    let (range, subset) = random_subset_spec(
        system.index().dataset(),
        system.index().vertical(),
        0.2,
        &mut rng,
    );
    assert!(!subset.is_empty());
    let query = LocalizedQuery::builder()
        .range(range)
        .minsupp(spec.minsupps[0])
        .minconf(spec.minconf)
        .build().unwrap();
    let a = system.run(&QueryRequest::query(&query)).unwrap();
    let b = restored.run(&QueryRequest::query(&query)).unwrap();
    assert_eq!(a.rules, b.rules);
}

#[test]
fn session_caching_preserves_answers_under_bursts() {
    let spec = mushroom_spec(Scale::Smoke);
    let system = build_system(&spec).into_shared();
    let session = QuerySession::new(system.clone());
    let mut rng = StdRng::seed_from_u64(29);
    let (range, subset) = random_subset_spec(
        system.index().dataset(),
        system.index().vertical(),
        0.3,
        &mut rng,
    );
    assert!(!subset.is_empty());
    // A burst of threshold refinements over one region, then repeats.
    let thresholds = [
        (spec.minsupps[0], 0.85),
        (spec.minsupps[1], 0.85),
        (spec.minsupps[2], 0.90),
        (spec.minsupps[0], 0.85), // repeat of the first
    ];
    for &(minsupp, minconf) in &thresholds {
        let q = LocalizedQuery::builder()
            .range(range.clone())
            .minsupp(minsupp)
            .minconf(minconf)
            .build().unwrap();
        let via_session = session.execute(&q).unwrap();
        let direct = system.run(&QueryRequest::query(&q)).unwrap();
        assert_eq!(via_session.rules, direct.rules);
    }
    let stats = session.stats();
    assert_eq!(stats.subset_misses, 1, "one region, one resolution");
    assert_eq!(stats.answer_hits, 1, "the repeated query must hit");
    assert_eq!(stats.answer_misses, 3);
}

#[test]
fn calibration_survives_a_snapshot_round_trip_bit_exactly() {
    // The acceptance bar for the persisted statistics catalog:
    // calibrate → save → load must hand the optimizer the *same* fitted
    // cost constants (to the bit), the same catalog, and therefore the
    // same plan choice and predicted seconds for the same query.
    let spec = mushroom_spec(Scale::Smoke);
    let system = build_system(&spec); // build + calibrate
    let dir = std::env::temp_dir().join(format!("colarm-calib-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("calibrated.snap");
    system.save_index_snapshot(&path).unwrap();
    let restored = Colarm::load_index_snapshot(&path).unwrap();
    std::fs::remove_file(&path).unwrap();

    let a = system.fitted_constants();
    let b = restored.fitted_constants();
    for (name, x, y) in [
        ("node", a.node, b.node),
        ("eliminate", a.eliminate, b.eliminate),
        ("verify", a.verify, b.verify),
        ("confidence", a.confidence, b.confidence),
        ("select", a.select, b.select),
        ("arm", a.arm, b.arm),
        ("union_const", a.union_const, b.union_const),
    ] {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "constant `{name}` drifted across the round trip: {x:e} vs {y:e}"
        );
    }
    assert_eq!(
        system.index().catalog(),
        restored.index().catalog(),
        "statistics catalog drifted across the round trip"
    );

    let mut rng = StdRng::seed_from_u64(41);
    let (range, subset) = random_subset_spec(
        system.index().dataset(),
        system.index().vertical(),
        0.2,
        &mut rng,
    );
    assert!(!subset.is_empty());
    let query = LocalizedQuery::builder()
        .range(range)
        .minsupp(spec.minsupps[1])
        .minconf(spec.minconf)
        .build().unwrap();
    let before = system.optimizer().choose(system.index(), &query, &subset);
    let after = restored.optimizer().choose(restored.index(), &query, &subset);
    assert_eq!(before.chosen, after.chosen, "plan choice changed after restore");
    for plan in PlanKind::ALL {
        let x = before.estimate_for(plan).total();
        let y = after.estimate_for(plan).total();
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{plan}: predicted seconds drifted across the round trip ({x:e} vs {y:e})"
        );
    }
}

#[test]
fn traditional_arm_agrees_with_every_index_plan() {
    // The from-scratch Apriori ARM plan and the five MIP-index plans must
    // return identical answers on the benchmark analogs.
    let spec = mushroom_spec(Scale::Smoke);
    let system = build_system(&spec);
    let mut rng = StdRng::seed_from_u64(31);
    let (range, subset) = random_subset_spec(
        system.index().dataset(),
        system.index().vertical(),
        0.2,
        &mut rng,
    );
    assert!(!subset.is_empty());
    let query = LocalizedQuery::builder()
        .range(range)
        .minsupp(spec.minsupps[1])
        .minconf(spec.minconf)
        .build().unwrap();
    let arm = system
        .run(&QueryRequest::query(&query).with_plan(PlanKind::Arm))
        .unwrap();
    for plan in [PlanKind::Sev, PlanKind::Svs, PlanKind::SsEv, PlanKind::SsVs, PlanKind::SsEuv] {
        let idx = system
            .run(&QueryRequest::query(&query).with_plan(plan))
            .unwrap();
        assert_eq!(arm.rules, idx.rules, "{plan} disagrees with ARM");
    }
}
