//! Parallel execution is an invisible knob: the offline index build and
//! all six online plans produce **bit-identical** results at every thread
//! count — same CFIs in the same order, same rules, same `OpTrace` unit
//! accounting. Only wall-clock durations may differ.

use colarm::data::synth::{generate, SynthConfig};
use colarm::plan::execute_plan_with;
use colarm::{ExecOptions, LocalizedQuery, MipIndex, MipIndexConfig, PlanKind};

/// Dense enough that candidate lists cross the operators' internal
/// parallelism threshold, so threads > 1 genuinely take the parallel paths.
fn dataset() -> colarm::data::Dataset {
    generate(&SynthConfig {
        name: "par-det".into(),
        seed: 77,
        records: 600,
        domains: vec![3, 3, 4, 2, 3, 2],
        top_mass: 0.6,
        skew: 1.0,
        clusters: 2,
        cluster_focus: 0.5,
        focus_strength: 0.9,
        templates: 4,
        template_len: 3,
        template_prob: 0.3,
    })
}

fn build(threads: usize) -> MipIndex {
    MipIndex::build(
        dataset(),
        MipIndexConfig {
            primary_support: 0.02,
            threads,
            ..Default::default()
        },
    )
    .unwrap()
}

#[test]
fn index_build_is_thread_count_invariant() {
    let seq = build(1);
    for threads in [2, 4, 8] {
        let par = build(threads);
        assert_eq!(par.num_mips(), seq.num_mips(), "{threads} threads");
        // Same CFIs with the same ids, itemsets and tidsets: the CFI
        // numbering feeds the R-tree payloads and snapshots, so it must
        // not depend on scheduling.
        for (id, cfi) in seq.ittree().iter() {
            let other = par.ittree().get(id);
            assert_eq!(other.itemset, cfi.itemset, "{threads} threads, {id:?}");
            assert_eq!(other.tids, cfi.tids, "{threads} threads, {id:?}");
        }
    }
}

#[test]
fn all_plans_bit_identical_across_thread_counts() {
    let index = build(1);
    let schema = index.dataset().schema().clone();
    let queries = [
        LocalizedQuery::builder()
            .range_named(&schema, "a0", &["v0"])
            .unwrap()
            .minsupp(0.05)
            .minconf(0.5)
            .build().unwrap(),
        LocalizedQuery::builder()
            .range_named(&schema, "a1", &["v0", "v1"])
            .unwrap()
            .item_attrs_named(&schema, &["a2", "a3", "a4"])
            .unwrap()
            .minsupp(0.1)
            .minconf(0.6)
            .build().unwrap(),
    ];
    for query in &queries {
        let subset = index.resolve_subset(query.range.clone()).unwrap();
        for plan in PlanKind::ALL {
            let seq = execute_plan_with(
                &index,
                query,
                &subset,
                plan,
                ExecOptions::with_threads(1),
            )
            .unwrap();
            // 0 = session default (all cores), the rest pin odd counts.
            for threads in [2, 3, 8, 0] {
                let par = execute_plan_with(
                    &index,
                    query,
                    &subset,
                    plan,
                    ExecOptions::with_threads(threads),
                )
                .unwrap();
                assert_eq!(par.rules, seq.rules, "{plan} diverged at {threads} threads");
                assert_eq!(par.trace.ops.len(), seq.trace.ops.len());
                for (a, b) in seq.trace.ops.iter().zip(&par.trace.ops) {
                    assert_eq!(a.kind, b.kind);
                    assert_eq!(a.input, b.input, "{plan}/{} at {threads} threads", a.kind);
                    assert_eq!(a.output, b.output, "{plan}/{} at {threads} threads", a.kind);
                    assert_eq!(
                        a.units.to_bits(),
                        b.units.to_bits(),
                        "{plan}/{} unit accounting drifted at {threads} threads",
                        a.kind
                    );
                }
            }
        }
    }
}
