//! Parallel execution is an invisible knob: the offline index build and
//! all six online plans produce **bit-identical** results at every thread
//! count — same CFIs in the same order, same rules, same `OpTrace` unit
//! accounting. Only wall-clock durations may differ.

use colarm::data::synth::{generate, SynthConfig};
use colarm::plan::execute_plan_with;
use colarm::{
    Colarm, ExecOptions, LocalizedQuery, MipIndex, MipIndexConfig, PlanKind, QuerySession,
    Semantics,
};

/// Dense enough that candidate lists cross the operators' internal
/// parallelism threshold, so threads > 1 genuinely take the parallel paths.
fn dataset() -> colarm::data::Dataset {
    generate(&SynthConfig {
        name: "par-det".into(),
        seed: 77,
        records: 600,
        domains: vec![3, 3, 4, 2, 3, 2],
        top_mass: 0.6,
        skew: 1.0,
        clusters: 2,
        cluster_focus: 0.5,
        focus_strength: 0.9,
        templates: 4,
        template_len: 3,
        template_prob: 0.3,
    })
}

fn build(threads: usize) -> MipIndex {
    MipIndex::build(
        dataset(),
        MipIndexConfig {
            primary_support: 0.02,
            threads,
            ..Default::default()
        },
    )
    .unwrap()
}

#[test]
fn index_build_is_thread_count_invariant() {
    let seq = build(1);
    for threads in [2, 4, 8] {
        let par = build(threads);
        assert_eq!(par.num_mips(), seq.num_mips(), "{threads} threads");
        // Same CFIs with the same ids, itemsets and tidsets: the CFI
        // numbering feeds the R-tree payloads and snapshots, so it must
        // not depend on scheduling.
        for (id, cfi) in seq.ittree().iter() {
            let other = par.ittree().get(id);
            assert_eq!(other.itemset, cfi.itemset, "{threads} threads, {id:?}");
            assert_eq!(other.tids, cfi.tids, "{threads} threads, {id:?}");
        }
    }
}

/// N OS threads each drive their own drill-down session over ONE shared
/// system, concurrently, at different per-session thread counts. Every
/// session must produce bit-identical rules and unit accounting, and —
/// because each session runs the same chain against its own caches — the
/// same derivation/hit/miss counters. This pins down that the persistent
/// worker pool and the cross-query reuse caches introduce no
/// scheduling-dependent state into answers or session accounting.
#[test]
fn concurrent_sessions_share_one_system_deterministically() {
    let colarm = Colarm::from_index(build(1)).into_shared();
    let schema = colarm.index().dataset().schema().clone();
    // A 4-step refinement chain; Unrestricted semantics forces the ARM
    // plan, so SELECT (and the column cache) runs at every step.
    let steps: [(&str, &[&str]); 4] = [
        ("a0", &["v0", "v1"]),
        ("a1", &["v0", "v1"]),
        ("a2", &["v0", "v1", "v2"]),
        ("a3", &["v0"]),
    ];
    let chain: Vec<LocalizedQuery> = (1..=steps.len())
        .map(|depth| {
            let mut b = LocalizedQuery::builder();
            for (attr, values) in &steps[..depth] {
                b = b.range_named(&schema, attr, values).unwrap();
            }
            b.minsupp(0.2)
                .minconf(0.5)
                .semantics(Semantics::Unrestricted)
                .build()
                .unwrap()
        })
        .collect();
    let run_chain = |threads: usize| {
        let session = QuerySession::new(colarm.clone());
        session.set_threads(threads);
        let mut out = Vec::new();
        for q in &chain {
            let answer = session.execute(q).unwrap();
            let units: Vec<u64> = answer.trace.ops.iter().map(|o| o.units.to_bits()).collect();
            out.push((answer.rules.clone(), units, answer.subset_size));
        }
        (out, session.stats())
    };
    let (reference, ref_stats) = run_chain(1);
    assert!(reference.iter().any(|(rules, _, _)| !rules.is_empty()));
    assert_eq!(ref_stats.subset_misses, 1, "only the chain root resolves fresh");
    assert_eq!(ref_stats.subsets_derived, chain.len() - 1);
    assert_eq!(ref_stats.column_misses, 1, "only the chain root scans fresh");
    assert_eq!(ref_stats.columns_derived, chain.len() - 1);
    assert_eq!(ref_stats.answer_misses, chain.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = [2usize, 3, 8, 0]
            .into_iter()
            .map(|threads| {
                let run_chain = &run_chain;
                scope.spawn(move || run_chain(threads))
            })
            .collect();
        for h in handles {
            let (result, stats) = h.join().unwrap();
            assert_eq!(result, reference, "concurrent session diverged");
            assert_eq!(stats, ref_stats, "per-session counters diverged");
        }
    });
}

#[test]
fn all_plans_bit_identical_across_thread_counts() {
    let index = build(1);
    let schema = index.dataset().schema().clone();
    let queries = [
        LocalizedQuery::builder()
            .range_named(&schema, "a0", &["v0"])
            .unwrap()
            .minsupp(0.05)
            .minconf(0.5)
            .build().unwrap(),
        LocalizedQuery::builder()
            .range_named(&schema, "a1", &["v0", "v1"])
            .unwrap()
            .item_attrs_named(&schema, &["a2", "a3", "a4"])
            .unwrap()
            .minsupp(0.1)
            .minconf(0.6)
            .build().unwrap(),
    ];
    for query in &queries {
        let subset = index.resolve_subset(query.range.clone()).unwrap();
        for plan in PlanKind::ALL {
            let seq = execute_plan_with(
                &index,
                query,
                &subset,
                plan,
                ExecOptions::with_threads(1),
            )
            .unwrap();
            // 0 = session default (all cores), the rest pin odd counts.
            for threads in [2, 3, 8, 0] {
                let par = execute_plan_with(
                    &index,
                    query,
                    &subset,
                    plan,
                    ExecOptions::with_threads(threads),
                )
                .unwrap();
                assert_eq!(par.rules, seq.rules, "{plan} diverged at {threads} threads");
                assert_eq!(par.trace.ops.len(), seq.trace.ops.len());
                for (a, b) in seq.trace.ops.iter().zip(&par.trace.ops) {
                    assert_eq!(a.kind, b.kind);
                    assert_eq!(a.input, b.input, "{plan}/{} at {threads} threads", a.kind);
                    assert_eq!(a.output, b.output, "{plan}/{} at {threads} threads", a.kind);
                    assert_eq!(
                        a.units.to_bits(),
                        b.units.to_bits(),
                        "{plan}/{} unit accounting drifted at {threads} threads",
                        a.kind
                    );
                }
            }
        }
    }
}
