//! The zero-copy mapped load path is an invisible knob: a v4 snapshot
//! loaded through `mmap` — lazily or eagerly validated — answers every
//! plan bit-identically to the same index decoded from the owned
//! (framed v3) stream, at every thread count, including the optimizer's
//! plan choice and predicted seconds. Concurrency over one shared
//! lazily-validated map is also deterministic, and mapping works on
//! files the process can only read.

use colarm::data::synth::{generate, SynthConfig};
use colarm::plan::execute_plan_with;
use colarm::{
    load_index_with_mode, save_index, save_index_v3_with_constants, Colarm, ExecOptions,
    LocalizedQuery, MipIndex, MipIndexConfig, PlanKind, QueryOutcome, QueryRequest,
    ValidationMode,
};
use std::path::PathBuf;
use std::sync::Arc;

/// Dense enough that candidate lists cross the operators' internal
/// parallelism thresholds and every container kind (array, bitmap,
/// runs) shows up in the persisted tidsets.
fn dataset() -> colarm::data::Dataset {
    generate(&SynthConfig {
        name: "mmap-det".into(),
        seed: 1203,
        records: 900,
        domains: vec![3, 3, 4, 2, 3, 2],
        top_mass: 0.6,
        skew: 1.0,
        clusters: 2,
        cluster_focus: 0.5,
        focus_strength: 0.9,
        templates: 4,
        template_len: 3,
        template_prob: 0.3,
    })
}

fn build_index() -> MipIndex {
    MipIndex::build(
        dataset(),
        MipIndexConfig {
            primary_support: 0.02,
            ..Default::default()
        },
    )
    .unwrap()
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("colarm-mmap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn queries(schema: &colarm::data::Schema) -> Vec<LocalizedQuery> {
    vec![
        LocalizedQuery::builder()
            .range_named(schema, "a0", &["v0"])
            .unwrap()
            .minsupp(0.05)
            .minconf(0.5)
            .build()
            .unwrap(),
        LocalizedQuery::builder()
            .range_named(schema, "a1", &["v0", "v1"])
            .unwrap()
            .item_attrs_named(schema, &["a2", "a3", "a4"])
            .unwrap()
            .minsupp(0.1)
            .minconf(0.6)
            .build()
            .unwrap(),
    ]
}

/// Save once as framed v3 (owned decode) and once as mapped v4; load the
/// v4 twice (lazy, eager). All three restored indexes answer all six
/// plans bit-identically at 1/2/8 threads — rules, per-operator traces
/// and unit accounting — and the optimizer sees the same statistics, so
/// plan choice and predicted seconds match to the bit.
#[test]
fn mapped_load_is_bit_identical_to_owned_decode_on_all_plans() {
    let original = build_index();
    let constants = colarm::cost::CostConstants::default();
    let v3_path = temp_path("det_v3.snap");
    let v4_path = temp_path("det_v4.snap");
    save_index_v3_with_constants(&original, constants, &v3_path).unwrap();
    save_index(&original, &v4_path).unwrap();

    let (owned, owned_consts) = load_index_with_mode(&v3_path, ValidationMode::Eager).unwrap();
    let (lazy, lazy_consts) = load_index_with_mode(&v4_path, ValidationMode::Lazy).unwrap();
    let (eager, eager_consts) = load_index_with_mode(&v4_path, ValidationMode::Eager).unwrap();
    assert_eq!(owned_consts, lazy_consts, "persisted constants diverged");
    assert_eq!(owned_consts, eager_consts, "persisted constants diverged");
    assert_eq!(owned.num_mips(), original.num_mips());
    assert_eq!(lazy.num_mips(), original.num_mips());
    assert_eq!(eager.num_mips(), original.num_mips());

    let schema = original.dataset().schema().clone();
    for query in &queries(&schema) {
        let so = owned.resolve_subset(query.range.clone()).unwrap();
        let sl = lazy.resolve_subset(query.range.clone()).unwrap();
        let se = eager.resolve_subset(query.range.clone()).unwrap();
        assert_eq!(so.tids(), sl.tids(), "subset resolution diverged on the lazy map");
        assert_eq!(so.tids(), se.tids(), "subset resolution diverged on the eager map");
        for plan in PlanKind::ALL {
            for threads in [1usize, 2, 8] {
                let opts = || ExecOptions::with_threads(threads);
                let a = execute_plan_with(&owned, query, &so, plan, opts()).unwrap();
                let b = execute_plan_with(&lazy, query, &sl, plan, opts()).unwrap();
                let c = execute_plan_with(&eager, query, &se, plan, opts()).unwrap();
                for (label, other) in [("lazy", &b), ("eager", &c)] {
                    assert_eq!(
                        a.rules, other.rules,
                        "{plan} rules diverged on the {label} map at {threads} threads"
                    );
                    assert_eq!(a.trace.ops.len(), other.trace.ops.len());
                    for (x, y) in a.trace.ops.iter().zip(&other.trace.ops) {
                        assert_eq!(x.kind, y.kind);
                        assert_eq!(x.input, y.input, "{plan}/{} ({label})", x.kind);
                        assert_eq!(x.output, y.output, "{plan}/{} ({label})", x.kind);
                        assert_eq!(
                            x.units.to_bits(),
                            y.units.to_bits(),
                            "{plan}/{} unit accounting drifted ({label}, {threads} threads)",
                            x.kind
                        );
                    }
                }
            }
        }
    }

    // The full optimized path: same plan choice, same predicted seconds.
    let sys_owned = Colarm::from_index(owned);
    let sys_lazy = Colarm::from_index(lazy);
    let sys_eager = Colarm::from_index(eager);
    for query in &queries(&schema) {
        let a = run_optimized(&sys_owned, query);
        let b = run_optimized(&sys_lazy, query);
        let c = run_optimized(&sys_eager, query);
        for (label, other) in [("lazy", &b), ("eager", &c)] {
            assert_outcomes_bit_identical(&a, other, label);
        }
    }
}

/// Run `query` through the optimizer and execution pipeline, keeping the
/// full choice + trace for comparison.
fn run_optimized(sys: &Colarm, query: &LocalizedQuery) -> QueryOutcome {
    sys.run(&QueryRequest::query(query).with_trace(true)).unwrap()
}

fn assert_outcomes_bit_identical(a: &QueryOutcome, b: &QueryOutcome, label: &str) {
    assert_eq!(a.plan, b.plan, "{label} executed plan");
    assert_eq!(a.subset_size, b.subset_size, "{label} subset size");
    assert_eq!(a.rules, b.rules, "{label} rules");
    let (ca, cb) = (
        a.choice.as_ref().expect("optimizer ran"),
        b.choice.as_ref().expect("optimizer ran"),
    );
    assert_eq!(ca.chosen, cb.chosen, "{label} plan choice");
    assert_eq!(ca.estimates.len(), cb.estimates.len());
    for (x, y) in ca.estimates.iter().zip(&cb.estimates) {
        assert_eq!(x.plan, y.plan, "{label} estimate order");
        assert_eq!(
            x.total().to_bits(),
            y.total().to_bits(),
            "{label} predicted seconds drifted for {}",
            x.plan
        );
    }
}

/// N OS threads hammer ONE shared `Arc<Colarm>` whose index sits on a
/// lazily-validated map: the deferred CRC pass races to be first, every
/// thread still gets the bit-identical reference answer, and nothing
/// panics or deadlocks.
#[test]
fn concurrent_queries_on_a_shared_lazy_map_are_bit_identical() {
    let original = build_index();
    let v4_path = temp_path("concurrent_v4.snap");
    save_index(&original, &v4_path).unwrap();

    let schema = original.dataset().schema().clone();
    let qs = queries(&schema);
    // Reference answers from the owned in-memory build.
    let reference_sys = Colarm::from_index(original);
    let reference: Vec<QueryOutcome> =
        qs.iter().map(|q| run_optimized(&reference_sys, q)).collect();

    let (index, _) = load_index_with_mode(&v4_path, ValidationMode::Lazy).unwrap();
    let shared = Arc::new(Colarm::from_index(index));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                let qs = &qs;
                scope.spawn(move || {
                    // Stagger which query each worker touches first so the
                    // validation race is hit from both entry points.
                    let mut outs = Vec::new();
                    for round in 0..qs.len() {
                        let i = (worker + round) % qs.len();
                        outs.push((i, run_optimized(&shared, &qs[i])));
                    }
                    outs
                })
            })
            .collect();
        for h in handles {
            for (i, out) in h.join().unwrap() {
                assert_outcomes_bit_identical(&reference[i], &out, &format!("query {i}"));
            }
        }
    });
}

/// `PROT_READ` + `MAP_PRIVATE` means a snapshot the process cannot write
/// still maps and serves queries — the common production shape where the
/// index file is owned by a deploy user and the server runs unprivileged.
#[cfg(unix)]
#[test]
fn read_only_snapshot_maps_and_answers() {
    use std::os::unix::fs::PermissionsExt;
    let original = build_index();
    let path = temp_path("readonly_v4.snap");
    save_index(&original, &path).unwrap();
    std::fs::set_permissions(&path, std::fs::Permissions::from_mode(0o444)).unwrap();

    let schema = original.dataset().schema().clone();
    for mode in [ValidationMode::Lazy, ValidationMode::Eager] {
        let (index, _) = load_index_with_mode(&path, mode).unwrap();
        index.ensure_validated().unwrap();
        let query = &queries(&schema)[0];
        let subset = index.resolve_subset(query.range.clone()).unwrap();
        let got = execute_plan_with(
            &index,
            query,
            &subset,
            PlanKind::Sev,
            ExecOptions::with_threads(1),
        )
        .unwrap();
        let ss = original.resolve_subset(query.range.clone()).unwrap();
        let want = execute_plan_with(
            &original,
            query,
            &ss,
            PlanKind::Sev,
            ExecOptions::with_threads(1),
        )
        .unwrap();
        assert_eq!(got.rules, want.rules, "{mode:?}");
    }
    // Restore write permission so the temp dir can be cleaned up.
    std::fs::set_permissions(&path, std::fs::Permissions::from_mode(0o644)).unwrap();
}
