//! The operator engine is a pure refactor of the plan executor: for every
//! plan, every dataset, and every thread count, `engine::execute` (through
//! `execute_plan_with`) must produce **bit-identical** rules, traces, and
//! metrics to the pre-engine wiring — the hand-written pipelines of
//! `ops::` free functions this suite reproduces verbatim. Cancellation is
//! the engine's one new behaviour: a deadline/budget/token stop surfaces
//! as `ColarmError::Canceled` naming the operator, never a panic or a
//! partial answer.

use colarm::data::synth::{generate, salary, SynthConfig};
use colarm::data::FocalSubset;
use colarm::mine::rules::Rule;
use colarm::ops::{self, ExecOptions, OpTrace};
use colarm::plan::{execute_plan_limited, execute_plan_with};
use colarm::{
    ColarmError, LocalizedQuery, MipIndex, MipIndexConfig, OpKind, PlanKind, QueryLimits,
};
use std::time::Duration;

/// The pre-engine executor, reproduced exactly: the six hand-wired
/// pipelines over the public `ops::` free functions, then the shared
/// rule-ordering epilogue. This is the ground truth the engine must match
/// bit for bit.
fn reference_execute(
    index: &MipIndex,
    query: &LocalizedQuery,
    subset: &FocalSubset,
    plan: PlanKind,
    opts: ExecOptions,
) -> (Vec<Rule>, Vec<OpTrace>) {
    let minsupp_count = query.minsupp_count(subset.len());
    let minconf = query.minconf;
    let mut traces = Vec::new();
    let mut rules = match plan {
        PlanKind::Sev => {
            let (cands, t) = ops::search(index, subset);
            traces.push(t);
            let (kept, t) = ops::eliminate_with(index, query, subset, cands, minsupp_count, opts);
            traces.push(t);
            let (rules, t) = ops::verify_with(index, subset, &kept, minconf, opts);
            traces.push(t);
            rules
        }
        PlanKind::Svs => {
            let (cands, t) = ops::search(index, subset);
            traces.push(t);
            let (rules, t) = ops::supported_verify_with(
                index, query, subset, cands, minsupp_count, minconf, opts,
            );
            traces.push(t);
            rules
        }
        PlanKind::SsEv => {
            let (cands, t) = ops::supported_search(index, subset, minsupp_count);
            traces.push(t);
            let (kept, t) = ops::eliminate_with(index, query, subset, cands, minsupp_count, opts);
            traces.push(t);
            let (rules, t) = ops::verify_with(index, subset, &kept, minconf, opts);
            traces.push(t);
            rules
        }
        PlanKind::SsVs => {
            let (cands, t) = ops::supported_search(index, subset, minsupp_count);
            traces.push(t);
            let (rules, t) = ops::supported_verify_with(
                index, query, subset, cands, minsupp_count, minconf, opts,
            );
            traces.push(t);
            rules
        }
        PlanKind::SsEuv => {
            let (cands, t) = ops::supported_search(index, subset, minsupp_count);
            traces.push(t);
            let (contained, partial, t) = ops::classify(index, query, subset, cands);
            traces.push(t);
            let (kept_partial, t) =
                ops::eliminate_projected_with(index, subset, partial, minsupp_count, opts);
            traces.push(t);
            let (merged, t) = ops::union_lists(contained, kept_partial);
            traces.push(t);
            let (rules, t) = ops::verify_with(index, subset, &merged, minconf, opts);
            traces.push(t);
            rules
        }
        PlanKind::Arm => {
            let (columns, t) = ops::select_with(index, query, subset, opts);
            traces.push(t);
            let (rules, t) =
                ops::arm_with(index, query, subset, &columns, minsupp_count, minconf, opts);
            traces.push(t);
            rules
        }
    };
    rules.sort_by(|a, b| (&a.antecedent, &a.consequent).cmp(&(&b.antecedent, &b.consequent)));
    (rules, traces)
}

/// Engine output vs the reference path: rules equal, and every trace
/// identical in everything but wall-clock duration — operator kind,
/// cardinalities, unit bits, and the full counter block.
fn assert_engine_matches_reference(
    index: &MipIndex,
    query: &LocalizedQuery,
    subset: &FocalSubset,
    plan: PlanKind,
    threads: usize,
    label: &str,
) {
    let opts = ExecOptions::with_threads(threads).with_metrics(true);
    let engine = execute_plan_with(index, query, subset, plan, opts).unwrap();
    let (ref_rules, ref_traces) = reference_execute(index, query, subset, plan, opts);
    assert_eq!(
        engine.rules, ref_rules,
        "{label}: {plan} rules diverged at {threads} threads"
    );
    assert_eq!(
        engine.trace.ops.len(),
        ref_traces.len(),
        "{label}: {plan} trace shape diverged"
    );
    let mut ref_units = 0.0;
    for (e, r) in engine.trace.ops.iter().zip(&ref_traces) {
        let at = format!("{label}: {plan}/{} at {threads} threads", r.kind);
        assert_eq!(e.kind, r.kind, "{at}");
        assert_eq!(e.input, r.input, "{at}: input");
        assert_eq!(e.output, r.output, "{at}: output");
        assert_eq!(
            e.units.to_bits(),
            r.units.to_bits(),
            "{at}: unit accounting drifted ({} vs {})",
            e.units,
            r.units
        );
        assert_eq!(e.metrics, r.metrics, "{at}: counters drifted");
        ref_units += r.units;
    }
    assert_eq!(
        engine.trace.total_units().to_bits(),
        ref_units.to_bits(),
        "{label}: {plan} total_units drifted"
    );
}

fn salary_setup() -> (MipIndex, Vec<LocalizedQuery>) {
    let index = MipIndex::build(
        salary(),
        MipIndexConfig {
            primary_support: 2.0 / 11.0,
            ..Default::default()
        },
    )
    .unwrap();
    let schema = index.dataset().schema().clone();
    let queries = vec![
        // The paper's §1.1 walkthrough: female employees in Seattle.
        LocalizedQuery::builder()
            .range_named(&schema, "Location", &["Seattle"])
            .unwrap()
            .range_named(&schema, "Gender", &["F"])
            .unwrap()
            .minsupp(0.75)
            .minconf(0.9)
            .build()
            .unwrap(),
        // A looser query over a single-attribute range.
        LocalizedQuery::builder()
            .range_named(&schema, "Gender", &["F"])
            .unwrap()
            .minsupp(0.5)
            .minconf(0.7)
            .build()
            .unwrap(),
    ];
    (index, queries)
}

fn synth_setup() -> (MipIndex, Vec<LocalizedQuery>) {
    let dataset = generate(&SynthConfig {
        name: "engine-eq".into(),
        seed: 23,
        records: 500,
        domains: vec![3, 3, 4, 2, 3],
        top_mass: 0.6,
        skew: 1.0,
        clusters: 2,
        cluster_focus: 0.5,
        focus_strength: 0.9,
        templates: 3,
        template_len: 3,
        template_prob: 0.3,
    });
    let index = MipIndex::build(
        dataset,
        MipIndexConfig {
            primary_support: 0.02,
            ..Default::default()
        },
    )
    .unwrap();
    let schema = index.dataset().schema().clone();
    let queries = vec![
        LocalizedQuery::builder()
            .range_named(&schema, "a0", &["v0"])
            .unwrap()
            .minsupp(0.05)
            .minconf(0.5)
            .build()
            .unwrap(),
        // Item-attribute restriction exercises the projection/dedup path.
        LocalizedQuery::builder()
            .range_named(&schema, "a1", &["v0", "v1"])
            .unwrap()
            .item_attrs_named(&schema, &["a2", "a3", "a4"])
            .unwrap()
            .minsupp(0.1)
            .minconf(0.6)
            .build()
            .unwrap(),
    ];
    (index, queries)
}

#[test]
fn engine_matches_reference_on_salary_walkthrough() {
    let (index, queries) = salary_setup();
    for query in &queries {
        let subset = index.resolve_subset(query.range.clone()).unwrap();
        for plan in PlanKind::ALL {
            for threads in [1, 2, 8] {
                assert_engine_matches_reference(&index, query, &subset, plan, threads, "salary");
            }
        }
    }
}

#[test]
fn engine_matches_reference_on_synth_dataset() {
    let (index, queries) = synth_setup();
    for query in &queries {
        let subset = index.resolve_subset(query.range.clone()).unwrap();
        for plan in PlanKind::ALL {
            for threads in [1, 2, 8] {
                assert_engine_matches_reference(&index, query, &subset, plan, threads, "synth");
            }
        }
    }
}

#[test]
fn zero_deadline_cancels_every_plan_before_its_first_operator() {
    let (index, queries) = salary_setup();
    let query = &queries[0];
    let subset = index.resolve_subset(query.range.clone()).unwrap();
    for plan in PlanKind::ALL {
        let limits = QueryLimits::none().with_timeout(Duration::ZERO);
        let err = execute_plan_limited(
            &index,
            query,
            &subset,
            plan,
            ExecOptions::default(),
            &limits,
        )
        .unwrap_err();
        match err {
            ColarmError::Canceled { after_units, op } => {
                assert_eq!(after_units, 0.0, "{plan}: nothing ran, nothing charged");
                let first = match plan {
                    PlanKind::Sev | PlanKind::Svs => OpKind::Search,
                    PlanKind::SsEv | PlanKind::SsVs | PlanKind::SsEuv => OpKind::SupportedSearch,
                    PlanKind::Arm => OpKind::Select,
                };
                assert_eq!(op, first, "{plan}: canceled in its first operator");
            }
            other => panic!("{plan}: expected Canceled, got {other:?}"),
        }
    }
}

#[test]
fn canceled_executions_report_consistent_spent_units() {
    // A budget below SEARCH's node-visit charge: the Sev pipeline cancels
    // before ELIMINATE, and the reported spend equals SEARCH's units.
    let (index, queries) = salary_setup();
    let query = &queries[0];
    let subset = index.resolve_subset(query.range.clone()).unwrap();
    let (_, search_trace) = ops::search(&index, &subset);
    let limits = QueryLimits::none().with_budget_units(search_trace.units - 0.5);
    let err = execute_plan_limited(
        &index,
        query,
        &subset,
        PlanKind::Sev,
        ExecOptions::default(),
        &limits,
    )
    .unwrap_err();
    match err {
        ColarmError::Canceled { after_units, op } => {
            assert_eq!(op, OpKind::Eliminate);
            assert_eq!(after_units.to_bits(), search_trace.units.to_bits());
        }
        other => panic!("expected Canceled, got {other:?}"),
    }
}
