//! Degenerate and boundary inputs: the system must answer (or reject)
//! gracefully, never panic.

use colarm::{Colarm, LocalizedQuery, MipIndexConfig, PlanKind};
use colarm::data::{DatasetBuilder, RangeSpec, SchemaBuilder};

fn tiny(records: &[&[u16]], domains: &[usize]) -> colarm::data::Dataset {
    let mut builder = SchemaBuilder::new();
    for (i, &d) in domains.iter().enumerate() {
        let values: Vec<String> = (0..d).map(|v| format!("v{v}")).collect();
        builder = builder.attribute(format!("a{i}"), values);
    }
    let schema = builder.build().unwrap();
    let mut b = DatasetBuilder::new(schema);
    for r in records {
        b.push(r).unwrap();
    }
    b.build()
}

#[test]
fn single_record_dataset() {
    let d = tiny(&[&[0, 1, 0]], &[2, 2, 2]);
    let colarm = Colarm::build(
        d,
        MipIndexConfig {
            primary_support: 1.0,
            ..Default::default()
        },
    )
    .unwrap();
    // The lone record's full itemset is the only closed set.
    assert_eq!(colarm.index().num_mips(), 1);
    let q = LocalizedQuery::builder().minsupp(1.0).minconf(1.0).build().unwrap();
    let answers = colarm.execute_all_plans(&q).unwrap();
    for a in &answers[1..] {
        assert_eq!(a.rules, answers[0].rules);
    }
    // One 3-item body at 100% support / 100% confidence: 2^3 − 2 rules.
    assert_eq!(answers[0].rules.len(), 6);
}

#[test]
fn constant_dataset_yields_one_giant_body() {
    let rows: Vec<&[u16]> = (0..10).map(|_| &[1u16, 0, 2][..]).collect();
    let d = tiny(&rows, &[2, 2, 3]);
    let colarm = Colarm::build(
        d,
        MipIndexConfig {
            primary_support: 0.5,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(colarm.index().num_mips(), 1);
    let q = LocalizedQuery::builder().minsupp(0.9).minconf(0.9).build().unwrap();
    let out = colarm.run(&colarm::QueryRequest::query(&q)).unwrap();
    assert_eq!(out.rules.len(), 6);
    for r in &out.rules {
        assert_eq!(r.confidence(), 1.0);
        assert_eq!(r.support(), 1.0);
    }
}

#[test]
fn primary_support_one_on_diverse_data_gives_empty_index() {
    let d = tiny(&[&[0, 0], &[1, 1], &[0, 1], &[1, 0]], &[2, 2]);
    let colarm = Colarm::build(
        d,
        MipIndexConfig {
            primary_support: 1.0,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(colarm.index().num_mips(), 0);
    // Queries still run and return the empty answer from every plan.
    let q = LocalizedQuery::builder().minsupp(0.5).minconf(0.5).build().unwrap();
    for plan in PlanKind::ALL {
        let a = colarm
            .run(&colarm::QueryRequest::query(&q).with_plan(plan))
            .unwrap();
        assert!(a.rules.is_empty(), "{plan} invented rules");
    }
}

#[test]
fn single_attribute_dataset_has_no_rules() {
    // Rules need bodies of ≥2 items, impossible with one attribute.
    let rows: Vec<&[u16]> = (0..8).map(|i| if i < 6 { &[0u16][..] } else { &[1u16][..] }).collect();
    let d = tiny(&rows, &[2]);
    let colarm = Colarm::build(
        d,
        MipIndexConfig {
            primary_support: 0.1,
            ..Default::default()
        },
    )
    .unwrap();
    let q = LocalizedQuery::builder().minsupp(0.1).minconf(0.1).build().unwrap();
    let answers = colarm.execute_all_plans(&q).unwrap();
    for a in &answers {
        assert!(a.rules.is_empty());
    }
}

#[test]
fn full_range_query_equals_global_mining() {
    // DQ = D: localized mining must degrade to ordinary global mining.
    let d = colarm::data::synth::salary();
    let colarm = Colarm::build(
        d,
        MipIndexConfig {
            primary_support: 2.0 / 11.0,
            ..Default::default()
        },
    )
    .unwrap();
    let q = LocalizedQuery::builder()
        .range(RangeSpec::all())
        .minsupp(0.3)
        .minconf(0.8)
        .build().unwrap();
    let answers = colarm.execute_all_plans(&q).unwrap();
    for a in &answers[1..] {
        assert_eq!(a.rules, answers[0].rules);
    }
    assert!(!answers[0].rules.is_empty());
    for r in &answers[0].rules {
        assert_eq!(r.counts.universe, 11);
        assert!(r.support() >= 0.3 - 1e-9);
    }
}

#[test]
fn boundary_thresholds_behave() {
    let d = colarm::data::synth::salary();
    let colarm = Colarm::build(
        d,
        MipIndexConfig {
            primary_support: 2.0 / 11.0,
            ..Default::default()
        },
    )
    .unwrap();
    // minsupp = 1.0 within a homogeneous subset still works.
    let schema = colarm.index().dataset().schema().clone();
    let q = LocalizedQuery::builder()
        .range_named(&schema, "Company", &["Microsoft"])
        .unwrap()
        .minsupp(1.0)
        .minconf(1.0)
        .build().unwrap();
    let out = colarm.run(&colarm::QueryRequest::query(&q)).unwrap();
    // Both Microsoft records share Location/Gender/Age/Salary → rules exist.
    assert!(!out.rules.is_empty());
    for r in &out.rules {
        assert_eq!(r.support(), 1.0);
        assert_eq!(r.confidence(), 1.0);
    }
}

#[test]
fn sub_primary_minsupp_is_answered_within_the_poqm_contract() {
    // minsupp far below the primary threshold: the index can only see
    // primary-frequent bodies (footnote 2); all plans agree on that
    // contract rather than erroring.
    let d = colarm::data::synth::salary();
    let colarm = Colarm::build(
        d,
        MipIndexConfig {
            primary_support: 0.4,
            ..Default::default()
        },
    )
    .unwrap();
    let q = LocalizedQuery::builder().minsupp(0.05).minconf(0.3).build().unwrap();
    let answers = colarm.execute_all_plans(&q).unwrap();
    for a in &answers[1..] {
        assert_eq!(a.rules, answers[0].rules);
    }
    for r in &answers[0].rules {
        // Every reported body is globally primary-frequent.
        assert!(r.counts.body as f64 / 11.0 >= 0.4 - 1e-9);
    }
}

#[test]
fn unrestricted_semantics_routes_to_arm() {
    let d = colarm::data::synth::salary();
    let colarm = Colarm::build(
        d,
        MipIndexConfig {
            primary_support: 0.5,
            ..Default::default()
        },
    )
    .unwrap();
    let schema = colarm.index().dataset().schema().clone();
    let q = LocalizedQuery::builder()
        .range_named(&schema, "Location", &["Seattle"])
        .unwrap()
        .minsupp(0.75)
        .minconf(0.9)
        .semantics(colarm::Semantics::Unrestricted)
        .build().unwrap();
    // Index plans must refuse the unrestricted contract…
    assert!(matches!(
        colarm.run(&colarm::QueryRequest::query(&q).with_plan(PlanKind::Sev)),
        Err(colarm::ColarmError::UnrestrictedRequiresArm { .. })
    ));
    // …while the optimizer path transparently routes to ARM.
    let out = colarm.run(&colarm::QueryRequest::query(&q)).unwrap();
    assert_eq!(out.plan, PlanKind::Arm);
    // And the unrestricted answer sees below-primary local patterns the
    // strict contract hides.
    let strict = LocalizedQuery { semantics: colarm::Semantics::Strict, ..q.clone() };
    let strict_rules = colarm
        .run(&colarm::QueryRequest::query(&strict))
        .unwrap()
        .rules
        .len();
    assert!(out.rules.len() >= strict_rules);
}
