//! Binary snapshot format stability, round-trip and corruption tests.
//!
//! Four golden fixtures are committed:
//!
//! * `tests/fixtures/salary_index_v1.snap` — format version 1 (PR 1's
//!   sparse/dense tidset payloads). **Never regenerated**: it pins the
//!   historical bytes this build promises to keep reading.
//! * `tests/fixtures/salary_index_v2.snap` — format version 2 (per-chunk
//!   container tidset payloads, no STATS section). **Never regenerated**
//!   either, for the same reason: a current writer can only produce the
//!   framed layout as version 3.
//! * `tests/fixtures/salary_index_v3.snap` — format version 3, the newest
//!   *framed* layout (adds the optional STATS section). Historical too:
//!   the streaming writer (`save_index_v3_with_constants`) still emits
//!   it, but `save_index` now writes version 4.
//! * `tests/fixtures/salary_index_v4.snap` — the current format version 4
//!   (aligned mapped layout: tail section directory, 64-byte aligned
//!   sections, raw LE container payloads, persisted vertical index; see
//!   `persist::layout`). Regenerate it — only after a deliberate,
//!   version-bumped format change — with:
//!
//! ```sh
//! COLARM_REGEN_SNAPSHOT_FIXTURE=1 cargo test --test snapshot_format
//! ```
//!
//! All fixtures must load and answer the paper's Table 1 walkthrough
//! with bit-identical rules on all six plans, and every single-byte flip
//! or truncation of any of them must be a detected error — for the
//! lazily-validated v4 mapped path, "detected" means at load *or* on
//! first touch ([`MipIndex::ensure_validated`]), never an undetected
//! wrong answer. The v1/v2 fixtures additionally must load
//! *stats-absent*: no catalog, no persisted constants, global-average
//! cost fallback.

use colarm::{
    load_index, save_index, Colarm, ColarmError, IndexSnapshot, LocalizedQuery, MipIndex,
    MipIndexConfig, PlanKind,
};
use proptest::prelude::*;
use std::path::PathBuf;

fn fixture_v1_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/salary_index_v1.snap")
}

fn fixture_v2_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/salary_index_v2.snap")
}

fn fixture_v3_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/salary_index_v3.snap")
}

fn fixture_v4_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/salary_index_v4.snap")
}

fn fixture_paths() -> [PathBuf; 4] {
    [
        fixture_v1_path(),
        fixture_v2_path(),
        fixture_v3_path(),
        fixture_v4_path(),
    ]
}

/// The committed fixtures that predate the STATS section.
fn legacy_fixture_paths() -> [PathBuf; 2] {
    [fixture_v1_path(), fixture_v2_path()]
}

fn salary_index() -> MipIndex {
    MipIndex::build(
        colarm::data::synth::salary(),
        MipIndexConfig {
            primary_support: 2.0 / 11.0,
            ..Default::default()
        },
    )
    .unwrap()
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("colarm-snapfmt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

const TABLE1: &str = "REPORT LOCALIZED ASSOCIATION RULES \
     WHERE RANGE Location = (Seattle), Gender = (F) \
     HAVING minsupport = 75% AND minconfidence = 90%;";

/// Format stability: both committed fixtures load byte-for-byte from disk
/// and answer the paper's Table 1 walkthrough with rules bit-identical to
/// a fresh offline build, on every one of the six plans.
#[test]
fn golden_fixtures_load_and_answer_table1_on_all_plans() {
    if std::env::var_os("COLARM_REGEN_SNAPSHOT_FIXTURE").is_some() {
        // Only the current-version fixture can ever be regenerated; the
        // v1/v2/v3 bytes are history and a v4 writer must not touch them.
        let path = fixture_v4_path();
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        save_index(&salary_index(), &path).unwrap();
        eprintln!("regenerated {}", path.display());
    }
    let fresh = salary_index();
    let schema = fresh.dataset().schema().clone();
    let query = colarm::parse_query(TABLE1, &schema).unwrap();
    for path in fixture_paths() {
        let index = load_index(&path)
            .unwrap_or_else(|e| panic!("golden fixture {} must keep loading: {e}", path.display()));
        // Same closed-itemset catalog as a fresh offline build (the CFI
        // *set* at a given threshold is canonical).
        assert_eq!(index.num_mips(), fresh.num_mips(), "{}", path.display());
        for plan in PlanKind::ALL {
            let sa = fresh.resolve_subset(query.range.clone()).unwrap();
            let sb = index.resolve_subset(query.range.clone()).unwrap();
            let a = colarm::execute_plan(&fresh, &query, &sa, plan).unwrap();
            let b = colarm::execute_plan(&index, &query, &sb, plan).unwrap();
            assert_eq!(
                a.rules,
                b.rules,
                "{plan} diverged on fixture {}",
                path.display()
            );
        }
        let system = Colarm::from_index(load_index(&path).unwrap());
        let out = system.run_text(TABLE1).unwrap();
        let rules: Vec<String> = out
            .rules
            .iter()
            .map(|r| r.display(&schema).to_string())
            .collect();
        assert!(
            rules.iter().any(|r| r.contains("Age=30-40") && r.contains("Salary=90K-120K")),
            "Table 1 localized rule missing from {rules:?} ({})",
            path.display()
        );
    }
}

/// The current writer emits format version 4; the v1/v2/v3 fixtures keep
/// their historical preambles. The v4 fixture additionally carries the
/// fixed tail record a mapped reader seeks first.
#[test]
fn fixture_preambles_pin_their_versions() {
    let v1 = std::fs::read(fixture_v1_path()).unwrap();
    assert_eq!(&v1[..8], b"COLARMIX");
    assert_eq!(u32::from_le_bytes(v1[8..12].try_into().unwrap()), 1);
    let v2 = std::fs::read(fixture_v2_path()).unwrap();
    assert_eq!(&v2[..8], b"COLARMIX");
    assert_eq!(u32::from_le_bytes(v2[8..12].try_into().unwrap()), 2);
    let v3 = std::fs::read(fixture_v3_path()).unwrap();
    assert_eq!(&v3[..8], b"COLARMIX");
    assert_eq!(u32::from_le_bytes(v3[8..12].try_into().unwrap()), 3);
    let v4 = std::fs::read(fixture_v4_path()).unwrap();
    assert_eq!(&v4[..8], b"COLARMIX");
    assert_eq!(
        u32::from_le_bytes(v4[8..12].try_into().unwrap()),
        colarm::persist::FORMAT_VERSION
    );
    assert_eq!(&v4[v4.len() - 8..], b"XIMRALOC", "v4 tail magic");
}

/// Pre-v3 snapshots carry no statistics catalog and no fitted cost
/// constants; they load stats-absent (global-average cost fallback) and
/// still answer. The v3 fixture carries both.
#[test]
fn legacy_fixtures_load_stats_absent_and_v3_carries_the_catalog() {
    for path in legacy_fixture_paths() {
        let (index, constants) = colarm::load_index_with_constants(&path).unwrap();
        assert!(
            constants.is_none(),
            "pre-v3 fixture {} produced persisted constants",
            path.display()
        );
        assert!(
            index.catalog().is_none(),
            "pre-v3 fixture {} produced a statistics catalog",
            path.display()
        );
    }
    let (index, constants) = colarm::load_index_with_constants(fixture_v3_path()).unwrap();
    assert!(constants.is_some(), "v3 fixture lost its cost constants");
    assert!(index.catalog().is_some(), "v3 fixture lost its catalog");
}

/// capture → save → load → restore answers bit-identically on all six
/// plans (through real files, exercising the atomic write path).
#[test]
fn binary_snapshot_round_trips_all_plans() {
    let original = salary_index();
    let path = temp_path("roundtrip.snap");
    save_index(&original, &path).unwrap();
    let restored = load_index(&path).unwrap();
    let schema = original.dataset().schema().clone();
    let query = colarm::parse_query(TABLE1, &schema).unwrap();
    for plan in PlanKind::ALL {
        let sa = original.resolve_subset(query.range.clone()).unwrap();
        let sb = restored.resolve_subset(query.range.clone()).unwrap();
        let a = colarm::execute_plan(&original, &query, &sa, plan).unwrap();
        let b = colarm::execute_plan(&restored, &query, &sb, plan).unwrap();
        assert_eq!(a.rules, b.rules, "{plan} diverged after file round trip");
    }
    std::fs::remove_file(&path).unwrap();
}

/// Load a possibly-corrupt snapshot and force any deferred (lazy)
/// validation, so "the corruption was detected" covers both phases of
/// the v4 mapped path: a v1–v3 snapshot detects everything at load, a
/// lazily-mapped v4 snapshot may legitimately defer a bulk-section
/// checksum to the first touch — but must *never* produce a validated,
/// queryable index from corrupt bytes.
fn load_and_touch(path: &PathBuf) -> Result<MipIndex, ColarmError> {
    let index = load_index(path)?;
    index.ensure_validated()?;
    Ok(index)
}

/// Every single-byte flip anywhere in any fixture is a detected
/// `ColarmError::Snapshot` — at load or on first touch, never a panic,
/// never a silent wrong answer. For the v4 fixture this sweep covers
/// flips in the head, the section directory, the fixed tail, alignment
/// padding, and every lazily-validated section.
#[test]
fn corrupting_the_fixtures_is_always_detected() {
    for fixture in fixture_paths() {
        let bytes = std::fs::read(&fixture).unwrap();
        let path = temp_path("flipped.snap");
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0xFF;
            std::fs::write(&path, &flipped).unwrap();
            match load_and_touch(&path) {
                Err(ColarmError::Snapshot { .. }) => {}
                Ok(_) => panic!(
                    "flip at byte {i} of {} went undetected ({})",
                    bytes.len(),
                    fixture.display()
                ),
                Err(other) => panic!(
                    "flip at byte {i}: expected Snapshot error, got {other:?} ({})",
                    fixture.display()
                ),
            }
        }
        std::fs::remove_file(&path).unwrap();
    }
}

/// Every truncation — including ones landing exactly on a section
/// boundary — is detected (the v1–v3 trailer's whole-file CRC and the
/// v4 tail's declared file length both catch those).
#[test]
fn truncating_the_fixtures_is_always_detected() {
    for fixture in fixture_paths() {
        let bytes = std::fs::read(&fixture).unwrap();
        let path = temp_path("truncated.snap");
        for len in 0..bytes.len() {
            std::fs::write(&path, &bytes[..len]).unwrap();
            match load_and_touch(&path) {
                Err(ColarmError::Snapshot { .. }) => {}
                Ok(_) => panic!(
                    "truncation to {len} of {} went undetected ({})",
                    bytes.len(),
                    fixture.display()
                ),
                Err(other) => panic!(
                    "truncation to {len}: expected Snapshot error, got {other:?} ({})",
                    fixture.display()
                ),
            }
        }
        std::fs::remove_file(&path).unwrap();
    }
}

/// v4 structural rejection: a directory entry pointing a section at a
/// misaligned offset must be refused up front (alignment is what makes
/// the in-place `&[u16]` / `&[u64]` reinterpretations sound), even when
/// the directory checksum is made consistent with the tampered entry.
#[test]
fn v4_rejects_misaligned_section_offsets() {
    let bytes = std::fs::read(fixture_v4_path()).unwrap();
    let tail = &bytes[bytes.len() - 40..];
    let dir_offset = u64::from_le_bytes(tail[0..8].try_into().unwrap()) as usize;
    let dir_count = u32::from_le_bytes(tail[8..12].try_into().unwrap()) as usize;
    assert!(dir_count >= 2, "fixture should have several sections");
    for entry in 0..dir_count {
        let mut tampered = bytes.clone();
        // Nudge this entry's offset (bytes 8..16 of the 24-byte row) off
        // its 64-byte alignment by 2 — still 2-aligned, so only the
        // format-level alignment check can object.
        let at = dir_offset + entry * 24 + 8;
        let offset = u64::from_le_bytes(tampered[at..at + 8].try_into().unwrap());
        tampered[at..at + 8].copy_from_slice(&(offset + 2).to_le_bytes());
        // Recompute the directory CRC so the tamper is not caught there.
        let dir_end = dir_offset + dir_count * 24;
        let dir_crc = colarm::data::codec::crc32(&tampered[dir_offset..dir_end]);
        let crc_at = tampered.len() - 40 + 12;
        tampered[crc_at..crc_at + 4].copy_from_slice(&dir_crc.to_le_bytes());
        let path = temp_path("misaligned.snap");
        std::fs::write(&path, &tampered).unwrap();
        match load_and_touch(&path) {
            Err(ColarmError::Snapshot { message }) => assert!(
                message.contains("misaligned") || message.contains("expected"),
                "entry {entry}: unhelpful message: {message}"
            ),
            other => panic!(
                "entry {entry}: misaligned offset accepted: {:?}",
                other.map(|_| "an index")
            ),
        }
        std::fs::remove_file(&path).unwrap();
    }
}

/// A 0-byte snapshot is its own clean error — not a JSON parse failure,
/// not a panic (regression guard for the prefix-sniffing dispatch).
#[test]
fn empty_snapshot_is_a_clean_error() {
    let path = temp_path("empty.snap");
    std::fs::write(&path, b"").unwrap();
    match load_index(&path) {
        Err(ColarmError::Snapshot { message }) => {
            assert!(message.contains("empty"), "unhelpful message: {message}")
        }
        other => panic!("expected Snapshot error, got {:?}", other.err()),
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn future_versions_are_rejected_not_guessed() {
    let mut bytes = std::fs::read(fixture_v2_path()).unwrap();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    let path = temp_path("future.snap");
    std::fs::write(&path, &bytes).unwrap();
    match load_index(&path) {
        Err(ColarmError::Snapshot { message }) => {
            assert!(message.contains("version 99"), "unhelpful message: {message}")
        }
        other => panic!("expected Snapshot error, got {:?}", other.err()),
    }
    std::fs::remove_file(&path).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: for arbitrary small datasets, a captured snapshot
    /// survives the binary format with *every* field intact (compared via
    /// the canonical JSON serialization of the snapshot on both sides).
    #[test]
    fn binary_round_trip_is_lossless(
        rows in proptest::collection::vec((0u16..3, 0u16..4, 0u16..2), 1..40),
        seed in 0u32..1000,
    ) {
        let schema = colarm::data::SchemaBuilder::new()
            .attribute("A", ["a0", "a1", "a2"])
            .attribute("B", ["b0", "b1", "b2", "b3"])
            .attribute("C", ["c0", "c1"])
            .build()
            .unwrap();
        let mut b = colarm::data::DatasetBuilder::new(schema);
        for (x, y, z) in &rows {
            b.push(&[*x, *y, *z]).unwrap();
        }
        let index = MipIndex::build(
            b.build(),
            MipIndexConfig { primary_support: 0.3, ..Default::default() },
        )
        .unwrap();
        let path = temp_path(&format!("prop-{seed}.snap"));
        save_index(&index, &path).unwrap();
        let loaded = IndexSnapshot::load(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        let original = IndexSnapshot::capture(&index);
        prop_assert_eq!(original.to_json().unwrap(), loaded.to_json().unwrap());
    }
}

/// The builder-level API still answers identically after a round trip —
/// guards the `LocalizedQuery` path as well as the parser path.
#[test]
fn restored_system_serves_builder_queries() {
    let original = salary_index();
    let path = temp_path("builder.snap");
    save_index(&original, &path).unwrap();
    let restored = load_index(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    let schema = original.dataset().schema().clone();
    let query = LocalizedQuery::builder()
        .range_named(&schema, "Gender", &["F"])
        .unwrap()
        .minsupp(0.5)
        .minconf(0.8)
        .build()
        .unwrap();
    let request = colarm::QueryRequest::query(&query);
    let a = Colarm::from_index(original).run(&request).unwrap();
    let b = Colarm::from_index(restored).run(&request).unwrap();
    assert_eq!(a.rules, b.rules);
}
